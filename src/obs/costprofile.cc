#include "obs/costprofile.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "obs/jsonlite.h"
#include "obs/metrics.h"

namespace sit::obs {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Doubles print with enough digits to round-trip through the jsonlite
// reader bit-exactly (%.17g is the shortest always-sufficient form).
void put_double(std::ostringstream& o, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  o << buf;
}

CostProfileActor* find_or_insert(std::vector<CostProfileActor>& actors,
                                 const std::string& name) {
  const auto it = std::lower_bound(
      actors.begin(), actors.end(), name,
      [](const CostProfileActor& a, const std::string& n) { return a.name < n; });
  if (it != actors.end() && it->name == name) return &*it;
  CostProfileActor a;
  a.name = name;
  return &*actors.insert(it, std::move(a));
}

void accumulate(CostProfileActor* into, const CostProfileActor& from) {
  into->firings += from.firings;
  into->wall_ns += from.wall_ns;
  if (into->model_cycles_per_fire <= 0) {
    into->model_cycles_per_fire = from.model_cycles_per_fire;
  }
  into->ops += from.ops;
}

void add_super(std::vector<std::pair<std::string, std::int64_t>>& super,
               const std::string& name, std::int64_t count) {
  for (auto& [k, v] : super) {
    if (k == name) {
      v += count;
      return;
    }
  }
  super.emplace_back(name, count);
}

std::int64_t get_i64(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? static_cast<std::int64_t>(v->number)
                                          : 0;
}

double get_num(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->number : 0.0;
}

std::string get_str(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return (v != nullptr && v->is_string()) ? v->str : std::string();
}

}  // namespace

void CostProfile::add_run(
    const MetricsSnapshot& m,
    const std::map<std::string, double>& model_cycles_per_fire) {
  if (!m.app.empty() &&
      std::find(apps.begin(), apps.end(), m.app) == apps.end()) {
    apps.push_back(m.app);
  }
  for (const ActorSnapshot& a : m.actors) {
    if (a.firings <= 0 || a.wall_ns <= 0) continue;
    CostProfileActor row;
    row.name = a.name;
    row.firings = a.firings;
    row.wall_ns = a.wall_ns;
    row.ops = a.ops;
    const auto it = model_cycles_per_fire.find(a.name);
    if (it != model_cycles_per_fire.end()) row.model_cycles_per_fire = it->second;
    accumulate(find_or_insert(actors, a.name), row);
  }
  for (const auto& [name, count] : m.fused_super) add_super(super, name, count);
}

void CostProfile::merge(const CostProfile& other) {
  for (const std::string& app : other.apps) {
    if (std::find(apps.begin(), apps.end(), app) == apps.end()) {
      apps.push_back(app);
    }
  }
  for (const CostProfileActor& a : other.actors) {
    accumulate(find_or_insert(actors, a.name), a);
  }
  for (const auto& [name, count] : other.super) add_super(super, name, count);
}

const CostProfileActor* CostProfile::find(const std::string& name) const {
  const auto it = std::lower_bound(
      actors.begin(), actors.end(), name,
      [](const CostProfileActor& a, const std::string& n) { return a.name < n; });
  return (it != actors.end() && it->name == name) ? &*it : nullptr;
}

double CostProfile::cycles_per_ns() const {
  double cycles = 0.0;
  double ns = 0.0;
  for (const CostProfileActor& a : actors) {
    if (a.model_cycles_per_fire <= 0 || a.wall_ns <= 0) continue;
    cycles += a.model_cycles_per_fire * static_cast<double>(a.firings);
    ns += static_cast<double>(a.wall_ns);
  }
  return ns > 0 ? cycles / ns : 1.0;
}

std::string CostProfile::to_json() const {
  std::ostringstream o;
  o << "{\n";
  o << "  \"schema\": " << schema << ",\n";
  o << "  \"git_sha\": \"" << escape(git_sha) << "\",\n";
  o << "  \"host\": {\"hostname\": \"" << escape(hostname)
    << "\", \"cpus\": " << cpus << "},\n";
  o << "  \"apps\": [";
  for (std::size_t i = 0; i < apps.size(); ++i) {
    o << "\"" << escape(apps[i]) << "\"" << (i + 1 < apps.size() ? ", " : "");
  }
  o << "],\n";
  o << "  \"actors\": [\n";
  for (std::size_t i = 0; i < actors.size(); ++i) {
    const CostProfileActor& a = actors[i];
    o << "    {\"name\": \"" << escape(a.name) << "\", \"firings\": " << a.firings
      << ", \"wall_ns\": " << a.wall_ns << ", \"model_cycles_per_fire\": ";
    put_double(o, a.model_cycles_per_fire);
    o << ", \"ops\": {\"int_ops\": " << a.ops.int_ops
      << ", \"flops\": " << a.ops.flops << ", \"divs\": " << a.ops.divs
      << ", \"trans\": " << a.ops.trans << ", \"mem\": " << a.ops.mem
      << ", \"channel\": " << a.ops.channel << "}}"
      << (i + 1 < actors.size() ? "," : "") << "\n";
  }
  o << "  ],\n";
  o << "  \"super\": {";
  for (std::size_t i = 0; i < super.size(); ++i) {
    o << "\"" << escape(super[i].first) << "\": " << super[i].second
      << (i + 1 < super.size() ? ", " : "");
  }
  o << "}\n";
  o << "}\n";
  return o.str();
}

bool CostProfile::parse(const std::string& text, CostProfile* out,
                        std::string* err) {
  const auto fail = [err](const std::string& why) {
    if (err != nullptr) *err = why;
    return false;
  };
  json::Value root;
  std::string jerr;
  if (!json::parse(text, &root, &jerr)) return fail("bad JSON: " + jerr);
  if (!root.is_object()) return fail("top level is not an object");

  const json::Value* schema = root.find("schema");
  if (schema == nullptr || !schema->is_number()) {
    return fail("missing \"schema\"");
  }
  if (static_cast<int>(schema->number) != kSchema) {
    return fail("unsupported schema " +
                std::to_string(static_cast<int>(schema->number)));
  }

  CostProfile p;
  p.schema = kSchema;
  p.git_sha = get_str(root, "git_sha");
  if (const json::Value* host = root.find("host");
      host != nullptr && host->is_object()) {
    p.hostname = get_str(*host, "hostname");
    p.cpus = static_cast<int>(get_i64(*host, "cpus"));
  }
  if (const json::Value* apps = root.find("apps");
      apps != nullptr && apps->is_array()) {
    for (const json::Value& a : apps->arr) {
      if (a.is_string()) p.apps.push_back(a.str);
    }
  }

  const json::Value* actors = root.find("actors");
  if (actors == nullptr || !actors->is_array()) {
    return fail("missing \"actors\" array");
  }
  for (const json::Value& a : actors->arr) {
    if (!a.is_object()) return fail("actor row is not an object");
    CostProfileActor row;
    row.name = get_str(a, "name");
    if (row.name.empty()) return fail("actor row without a name");
    row.firings = get_i64(a, "firings");
    row.wall_ns = get_i64(a, "wall_ns");
    row.model_cycles_per_fire = get_num(a, "model_cycles_per_fire");
    if (row.firings < 0 || row.wall_ns < 0 || row.model_cycles_per_fire < 0) {
      return fail("actor '" + row.name + "' has a negative count");
    }
    if (const json::Value* ops = a.find("ops");
        ops != nullptr && ops->is_object()) {
      row.ops.int_ops = get_i64(*ops, "int_ops");
      row.ops.flops = get_i64(*ops, "flops");
      row.ops.divs = get_i64(*ops, "divs");
      row.ops.trans = get_i64(*ops, "trans");
      row.ops.mem = get_i64(*ops, "mem");
      row.ops.channel = get_i64(*ops, "channel");
    }
    // Keep the emitter's sort instead of trusting foreign files to be sorted.
    accumulate(find_or_insert(p.actors, row.name), row);
  }

  if (const json::Value* super = root.find("super");
      super != nullptr && super->is_object()) {
    for (const auto& [k, v] : super->obj) {
      if (v.is_number()) {
        add_super(p.super, k, static_cast<std::int64_t>(v.number));
      }
    }
  }

  *out = std::move(p);
  return true;
}

}  // namespace sit::obs
