#pragma once
// Cost-profile artifacts: the measurement half of the calibration loop.
//
// A CostProfile is the durable record of where time actually went: per flat
// actor, measured wall-ns per firing (from the Recorder's FiringStats), the
// static model's cycles per firing (linear/cost.h, supplied by the
// harvester -- obs stays dependency-free), abstract-op aggregates, and the
// fused engine's per-superinstruction counts.  streamprof --calibrate writes
// one, streamprof --calibrate-all merges one per app into a corpus stamped
// with host metadata and the git SHA, and CostModel (obs/costmodel.h) loads
// one back to drive the partitioner / coarsen / selection costs.
//
// Serialization is plain JSON, written by to_json() and read back with the
// in-tree jsonlite reader; parse(to_json()) reproduces the profile exactly
// (pinned by tests), so the artifact survives a round trip through CI
// storage without drift.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "runtime/opcounts.h"

namespace sit::obs {

struct MetricsSnapshot;

// One flat actor's accumulated measurements across every contributing run.
// Totals, not rates: merging two runs is addition, and the rates
// (ns_per_fire) are derived on demand so they stay consistent after a merge.
struct CostProfileActor {
  std::string name;
  std::int64_t firings{0};       // measured firings contributing to wall_ns
  std::int64_t wall_ns{0};       // total measured wall time of those firings
  double model_cycles_per_fire{0};  // static model's estimate (0 = unknown)
  runtime::OpCounts ops;         // abstract-op totals (zero when not counted)

  // Measured nanoseconds per firing; 0 until at least one timed firing.
  [[nodiscard]] double ns_per_fire() const {
    return firings > 0
               ? static_cast<double>(wall_ns) / static_cast<double>(firings)
               : 0.0;
  }
};

struct CostProfile {
  static constexpr int kSchema = 1;

  int schema{kSchema};
  std::string git_sha;   // provenance: commit the binaries were built from
  std::string hostname;  // measurements are hardware-dependent
  int cpus{0};
  std::vector<std::string> apps;        // contributing apps, in harvest order
  std::vector<CostProfileActor> actors; // sorted by name (merge order stable)
  // Fused-engine superinstruction executions by stable name, summed across
  // contributing runs (empty when no run used the fused engine).
  std::vector<std::pair<std::string, std::int64_t>> super;

  // Fold one run's metrics into the profile.  `model_cycles_per_fire` maps
  // flat actor name -> the static model's cycles per firing for that run's
  // graph; the harvester computes it (linear::leaf_ops_per_firing) because
  // obs must not depend on the linear layer.  Actors without timed firings
  // (wall_ns == 0) are skipped -- an untimed run calibrates nothing.
  void add_run(const MetricsSnapshot& m,
               const std::map<std::string, double>& model_cycles_per_fire);

  // Accumulate another profile (corpus building).  Host/provenance fields of
  // *this win; actor rows merge by name.
  void merge(const CostProfile& other);

  [[nodiscard]] const CostProfileActor* find(const std::string& name) const;

  // Corpus-wide modeled-cycles-per-measured-ns: the unit bridge that makes
  // measured weights commensurable with static fallback weights.  Computed
  // over actors that have both a measurement and a model estimate; 1.0 when
  // no actor has both (raw ns then act as cycles, which preserves relative
  // order -- the only thing LPT and the gates compare).
  [[nodiscard]] double cycles_per_ns() const;

  [[nodiscard]] std::string to_json() const;

  // Parse a serialized profile.  Returns false (with *err describing the
  // problem) on malformed JSON, a missing/unknown schema, or rows with
  // negative counts; *out is untouched on failure.
  static bool parse(const std::string& text, CostProfile* out,
                    std::string* err);
};

}  // namespace sit::obs
