#pragma once
// Scalar operator kernels shared by the tree interpreter and the bytecode VM.
//
// Both engines must agree bit-for-bit on StreamIt's Java-like promotion
// rules (int op int stays integral, any float operand promotes), so the
// arithmetic lives here exactly once.  These are pure value functions;
// operation *counting* stays engine-side because the tree walker and the VM
// attach costs at different points.

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ir/ast.h"
#include "ir/value.h"

namespace sit::runtime {

inline ir::Value apply_bin(ir::BinOp op, const ir::Value& a, const ir::Value& b) {
  using ir::BinOp;
  using ir::Value;
  const bool ints = a.is_int() && b.is_int();
  switch (op) {
    case BinOp::Add:
      return ints ? Value(a.as_int() + b.as_int()) : Value(a.as_double() + b.as_double());
    case BinOp::Sub:
      return ints ? Value(a.as_int() - b.as_int()) : Value(a.as_double() - b.as_double());
    case BinOp::Mul:
      return ints ? Value(a.as_int() * b.as_int()) : Value(a.as_double() * b.as_double());
    case BinOp::Div:
      if (ints) {
        if (b.as_int() == 0) throw std::runtime_error("integer division by zero");
        return Value(a.as_int() / b.as_int());
      }
      return Value(a.as_double() / b.as_double());
    case BinOp::Mod:
      if (ints) {
        if (b.as_int() == 0) throw std::runtime_error("integer modulo by zero");
        return Value(a.as_int() % b.as_int());
      }
      return Value(std::fmod(a.as_double(), b.as_double()));
    case BinOp::Min:
      return ints ? Value(std::min(a.as_int(), b.as_int()))
                  : Value(std::min(a.as_double(), b.as_double()));
    case BinOp::Max:
      return ints ? Value(std::max(a.as_int(), b.as_int()))
                  : Value(std::max(a.as_double(), b.as_double()));
    case BinOp::Pow:
      return Value(std::pow(a.as_double(), b.as_double()));
    case BinOp::Lt:
      return Value(ints ? a.as_int() < b.as_int() : a.as_double() < b.as_double());
    case BinOp::Le:
      return Value(ints ? a.as_int() <= b.as_int() : a.as_double() <= b.as_double());
    case BinOp::Gt:
      return Value(ints ? a.as_int() > b.as_int() : a.as_double() > b.as_double());
    case BinOp::Ge:
      return Value(ints ? a.as_int() >= b.as_int() : a.as_double() >= b.as_double());
    case BinOp::Eq:
      return Value(ints ? a.as_int() == b.as_int() : a.as_double() == b.as_double());
    case BinOp::Ne:
      return Value(ints ? a.as_int() != b.as_int() : a.as_double() != b.as_double());
    case BinOp::LAnd:
      return Value(a.truthy() && b.truthy());
    case BinOp::LOr:
      return Value(a.truthy() || b.truthy());
    case BinOp::BAnd:
      return Value(a.as_int() & b.as_int());
    case BinOp::BOr:
      return Value(a.as_int() | b.as_int());
    case BinOp::BXor:
      return Value(a.as_int() ^ b.as_int());
    case BinOp::Shl:
      return Value(a.as_int() << b.as_int());
    case BinOp::Shr:
      return Value(a.as_int() >> b.as_int());
  }
  throw std::runtime_error("unhandled binop");
}

inline ir::Value apply_un(ir::UnOp op, const ir::Value& a) {
  using ir::UnOp;
  using ir::Value;
  switch (op) {
    case UnOp::Neg:
      return a.is_int() ? Value(-a.as_int()) : Value(-a.as_double());
    case UnOp::LNot:
      return Value(!a.truthy());
    case UnOp::BNot:
      return Value(~a.as_int());
    case UnOp::Sin:
      return Value(std::sin(a.as_double()));
    case UnOp::Cos:
      return Value(std::cos(a.as_double()));
    case UnOp::Tan:
      return Value(std::tan(a.as_double()));
    case UnOp::Exp:
      return Value(std::exp(a.as_double()));
    case UnOp::Log:
      return Value(std::log(a.as_double()));
    case UnOp::Sqrt:
      return Value(std::sqrt(a.as_double()));
    case UnOp::Abs:
      return a.is_int() ? Value(std::abs(a.as_int())) : Value(std::fabs(a.as_double()));
    case UnOp::Floor:
      return Value(std::floor(a.as_double()));
    case UnOp::Ceil:
      return Value(std::ceil(a.as_double()));
    case UnOp::Round:
      return Value(std::round(a.as_double()));
    case UnOp::ToInt:
      return Value(a.as_int());
    case UnOp::ToFloat:
      return Value(a.as_double());
  }
  throw std::runtime_error("unhandled unop");
}

}  // namespace sit::runtime
