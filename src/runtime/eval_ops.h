#pragma once
// Scalar operator kernels shared by the tree interpreter and the bytecode VM.
//
// Both engines must agree bit-for-bit on StreamIt's Java-like promotion
// rules (int op int stays integral, any float operand promotes), so the
// arithmetic lives here exactly once.  These are pure value functions;
// operation *counting* stays engine-side because the tree walker and the VM
// attach costs at different points.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "ir/ast.h"
#include "ir/value.h"

namespace sit::runtime {

// Integer division/modulo with the runtime's zero checks.  Shared by the
// tagged kernels below and the typed (unboxed) dispatch loops so the error
// strings exist exactly once.
inline std::int64_t int_div(std::int64_t a, std::int64_t b) {
  if (b == 0) throw std::runtime_error("integer division by zero");
  return a / b;
}
inline std::int64_t int_mod(std::int64_t a, std::int64_t b) {
  if (b == 0) throw std::runtime_error("integer modulo by zero");
  return a % b;
}

inline ir::Value apply_bin(ir::BinOp op, const ir::Value& a, const ir::Value& b) {
  using ir::BinOp;
  using ir::Value;
  const bool ints = a.is_int() && b.is_int();
  switch (op) {
    case BinOp::Add:
      return ints ? Value(a.as_int() + b.as_int()) : Value(a.as_double() + b.as_double());
    case BinOp::Sub:
      return ints ? Value(a.as_int() - b.as_int()) : Value(a.as_double() - b.as_double());
    case BinOp::Mul:
      return ints ? Value(a.as_int() * b.as_int()) : Value(a.as_double() * b.as_double());
    case BinOp::Div:
      if (ints) return Value(int_div(a.as_int(), b.as_int()));
      return Value(a.as_double() / b.as_double());
    case BinOp::Mod:
      if (ints) return Value(int_mod(a.as_int(), b.as_int()));
      return Value(std::fmod(a.as_double(), b.as_double()));
    case BinOp::Min:
      return ints ? Value(std::min(a.as_int(), b.as_int()))
                  : Value(std::min(a.as_double(), b.as_double()));
    case BinOp::Max:
      return ints ? Value(std::max(a.as_int(), b.as_int()))
                  : Value(std::max(a.as_double(), b.as_double()));
    case BinOp::Pow:
      return Value(std::pow(a.as_double(), b.as_double()));
    case BinOp::Lt:
      return Value(ints ? a.as_int() < b.as_int() : a.as_double() < b.as_double());
    case BinOp::Le:
      return Value(ints ? a.as_int() <= b.as_int() : a.as_double() <= b.as_double());
    case BinOp::Gt:
      return Value(ints ? a.as_int() > b.as_int() : a.as_double() > b.as_double());
    case BinOp::Ge:
      return Value(ints ? a.as_int() >= b.as_int() : a.as_double() >= b.as_double());
    case BinOp::Eq:
      return Value(ints ? a.as_int() == b.as_int() : a.as_double() == b.as_double());
    case BinOp::Ne:
      return Value(ints ? a.as_int() != b.as_int() : a.as_double() != b.as_double());
    case BinOp::LAnd:
      return Value(a.truthy() && b.truthy());
    case BinOp::LOr:
      return Value(a.truthy() || b.truthy());
    case BinOp::BAnd:
      return Value(a.as_int() & b.as_int());
    case BinOp::BOr:
      return Value(a.as_int() | b.as_int());
    case BinOp::BXor:
      return Value(a.as_int() ^ b.as_int());
    case BinOp::Shl:
      return Value(a.as_int() << b.as_int());
    case BinOp::Shr:
      return Value(a.as_int() >> b.as_int());
  }
  throw std::runtime_error("unhandled binop");
}

inline ir::Value apply_un(ir::UnOp op, const ir::Value& a) {
  using ir::UnOp;
  using ir::Value;
  switch (op) {
    case UnOp::Neg:
      return a.is_int() ? Value(-a.as_int()) : Value(-a.as_double());
    case UnOp::LNot:
      return Value(!a.truthy());
    case UnOp::BNot:
      return Value(~a.as_int());
    case UnOp::Sin:
      return Value(std::sin(a.as_double()));
    case UnOp::Cos:
      return Value(std::cos(a.as_double()));
    case UnOp::Tan:
      return Value(std::tan(a.as_double()));
    case UnOp::Exp:
      return Value(std::exp(a.as_double()));
    case UnOp::Log:
      return Value(std::log(a.as_double()));
    case UnOp::Sqrt:
      return Value(std::sqrt(a.as_double()));
    case UnOp::Abs:
      return a.is_int() ? Value(std::abs(a.as_int())) : Value(std::fabs(a.as_double()));
    case UnOp::Floor:
      return Value(std::floor(a.as_double()));
    case UnOp::Ceil:
      return Value(std::ceil(a.as_double()));
    case UnOp::Round:
      return Value(std::round(a.as_double()));
    case UnOp::ToInt:
      return Value(a.as_int());
    case UnOp::ToFloat:
      return Value(a.as_double());
  }
  throw std::runtime_error("unhandled unop");
}

// ---- typed (unboxed) kernels ------------------------------------------------
//
// The typed register plane (runtime/typed.h) splits the tagged Value file
// into a raw double file and a raw int64 file.  The static typeflow analysis
// proves which plane every operand lives in at every program point; these
// kernels execute one binary/unary op against the two planes given that
// operand-plane mode byte.  They mirror apply_bin/apply_un exactly -- same
// promotion rules, same truncating casts, same error strings -- because any
// divergence breaks the SIT_TYPED=0 vs =1 bit-equality contract.

constexpr std::uint8_t kModeAD = 1;  // operand `a` lives in the double plane
constexpr std::uint8_t kModeBD = 2;  // operand `b` lives in the double plane
constexpr std::uint8_t kModeDD = 4;  // the `dst` operand (move source, store
                                     // or push payload) is in the double plane

// Cross-plane fetches, matching Value::as_int / Value::as_double.
inline std::int64_t typed_geti(const double* dr, const std::int64_t* ir,
                               std::uint16_t r, bool dbl) {
  return dbl ? static_cast<std::int64_t>(dr[r]) : ir[r];
}
inline double typed_getd(const double* dr, const std::int64_t* ir,
                         std::uint16_t r, bool dbl) {
  return dbl ? dr[r] : static_cast<double>(ir[r]);
}
inline bool typed_truthy(const double* dr, const std::int64_t* ir,
                         std::uint16_t r, bool dbl) {
  return dbl ? dr[r] != 0.0 : ir[r] != 0;
}

// One binary op over the dual plane.  `mode` carries the operand planes; the
// result plane is a function of the op and the operand planes (int kernel iff
// both operands are int), exactly as apply_bin resolves it from runtime tags.
inline void typed_bin(ir::BinOp op, double* dr, std::int64_t* ir,
                      std::uint16_t dst, std::uint16_t a, std::uint16_t b,
                      std::uint8_t mode) {
  using ir::BinOp;
  const bool ad = (mode & kModeAD) != 0;
  const bool bd = (mode & kModeBD) != 0;
  const bool ints = !ad && !bd;
  switch (op) {
    case BinOp::Add:
      if (ints) ir[dst] = ir[a] + ir[b];
      else dr[dst] = typed_getd(dr, ir, a, ad) + typed_getd(dr, ir, b, bd);
      break;
    case BinOp::Sub:
      if (ints) ir[dst] = ir[a] - ir[b];
      else dr[dst] = typed_getd(dr, ir, a, ad) - typed_getd(dr, ir, b, bd);
      break;
    case BinOp::Mul:
      if (ints) ir[dst] = ir[a] * ir[b];
      else dr[dst] = typed_getd(dr, ir, a, ad) * typed_getd(dr, ir, b, bd);
      break;
    case BinOp::Div:
      if (ints) ir[dst] = int_div(ir[a], ir[b]);
      else dr[dst] = typed_getd(dr, ir, a, ad) / typed_getd(dr, ir, b, bd);
      break;
    case BinOp::Mod:
      if (ints) ir[dst] = int_mod(ir[a], ir[b]);
      else dr[dst] = std::fmod(typed_getd(dr, ir, a, ad),
                               typed_getd(dr, ir, b, bd));
      break;
    case BinOp::Min:
      if (ints) ir[dst] = std::min(ir[a], ir[b]);
      else dr[dst] = std::min(typed_getd(dr, ir, a, ad),
                              typed_getd(dr, ir, b, bd));
      break;
    case BinOp::Max:
      if (ints) ir[dst] = std::max(ir[a], ir[b]);
      else dr[dst] = std::max(typed_getd(dr, ir, a, ad),
                              typed_getd(dr, ir, b, bd));
      break;
    case BinOp::Pow:
      dr[dst] = std::pow(typed_getd(dr, ir, a, ad), typed_getd(dr, ir, b, bd));
      break;
    case BinOp::Lt:
      ir[dst] = (ints ? ir[a] < ir[b]
                      : typed_getd(dr, ir, a, ad) < typed_getd(dr, ir, b, bd))
                    ? 1 : 0;
      break;
    case BinOp::Le:
      ir[dst] = (ints ? ir[a] <= ir[b]
                      : typed_getd(dr, ir, a, ad) <= typed_getd(dr, ir, b, bd))
                    ? 1 : 0;
      break;
    case BinOp::Gt:
      ir[dst] = (ints ? ir[a] > ir[b]
                      : typed_getd(dr, ir, a, ad) > typed_getd(dr, ir, b, bd))
                    ? 1 : 0;
      break;
    case BinOp::Ge:
      ir[dst] = (ints ? ir[a] >= ir[b]
                      : typed_getd(dr, ir, a, ad) >= typed_getd(dr, ir, b, bd))
                    ? 1 : 0;
      break;
    case BinOp::Eq:
      ir[dst] = (ints ? ir[a] == ir[b]
                      : typed_getd(dr, ir, a, ad) == typed_getd(dr, ir, b, bd))
                    ? 1 : 0;
      break;
    case BinOp::Ne:
      ir[dst] = (ints ? ir[a] != ir[b]
                      : typed_getd(dr, ir, a, ad) != typed_getd(dr, ir, b, bd))
                    ? 1 : 0;
      break;
    case BinOp::LAnd:
      ir[dst] = (typed_truthy(dr, ir, a, ad) && typed_truthy(dr, ir, b, bd))
                    ? 1 : 0;
      break;
    case BinOp::LOr:
      ir[dst] = (typed_truthy(dr, ir, a, ad) || typed_truthy(dr, ir, b, bd))
                    ? 1 : 0;
      break;
    case BinOp::BAnd:
      ir[dst] = typed_geti(dr, ir, a, ad) & typed_geti(dr, ir, b, bd);
      break;
    case BinOp::BOr:
      ir[dst] = typed_geti(dr, ir, a, ad) | typed_geti(dr, ir, b, bd);
      break;
    case BinOp::BXor:
      ir[dst] = typed_geti(dr, ir, a, ad) ^ typed_geti(dr, ir, b, bd);
      break;
    case BinOp::Shl:
      ir[dst] = typed_geti(dr, ir, a, ad) << typed_geti(dr, ir, b, bd);
      break;
    case BinOp::Shr:
      ir[dst] = typed_geti(dr, ir, a, ad) >> typed_geti(dr, ir, b, bd);
      break;
  }
}

// One unary op over the dual plane; kModeAD carries the operand plane.
inline void typed_un(ir::UnOp op, double* dr, std::int64_t* ir,
                     std::uint16_t dst, std::uint16_t a, std::uint8_t mode) {
  using ir::UnOp;
  const bool ad = (mode & kModeAD) != 0;
  switch (op) {
    case UnOp::Neg:
      if (ad) dr[dst] = -dr[a];
      else ir[dst] = -ir[a];
      break;
    case UnOp::Abs:
      if (ad) dr[dst] = std::fabs(dr[a]);
      else ir[dst] = std::abs(ir[a]);
      break;
    case UnOp::LNot:
      ir[dst] = typed_truthy(dr, ir, a, ad) ? 0 : 1;
      break;
    case UnOp::BNot:
      ir[dst] = ~typed_geti(dr, ir, a, ad);
      break;
    case UnOp::Sin: dr[dst] = std::sin(typed_getd(dr, ir, a, ad)); break;
    case UnOp::Cos: dr[dst] = std::cos(typed_getd(dr, ir, a, ad)); break;
    case UnOp::Tan: dr[dst] = std::tan(typed_getd(dr, ir, a, ad)); break;
    case UnOp::Exp: dr[dst] = std::exp(typed_getd(dr, ir, a, ad)); break;
    case UnOp::Log: dr[dst] = std::log(typed_getd(dr, ir, a, ad)); break;
    case UnOp::Sqrt: dr[dst] = std::sqrt(typed_getd(dr, ir, a, ad)); break;
    case UnOp::Floor: dr[dst] = std::floor(typed_getd(dr, ir, a, ad)); break;
    case UnOp::Ceil: dr[dst] = std::ceil(typed_getd(dr, ir, a, ad)); break;
    case UnOp::Round: dr[dst] = std::round(typed_getd(dr, ir, a, ad)); break;
    case UnOp::ToInt: ir[dst] = typed_geti(dr, ir, a, ad); break;
    case UnOp::ToFloat: dr[dst] = typed_getd(dr, ir, a, ad); break;
  }
}

}  // namespace sit::runtime
