#include "runtime/fused.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "runtime/compile.h"
#include "runtime/eval_ops.h"
#include "runtime/typed.h"

namespace sit::runtime {

using ir::BinOp;
using ir::UnOp;
using ir::Value;

namespace {

// Build refusals unwind through this; build_fused catches and reports.
struct BuildFail {
  std::string reason;
};

[[noreturn]] void fail(std::string reason) { throw BuildFail{std::move(reason)}; }

[[noreturn]] void peek_bounds_error(const std::string& name, std::int64_t off,
                                    std::int64_t pops, std::int64_t window) {
  throw std::runtime_error(
      "peek out of bounds in '" + name + "': peek(" + std::to_string(off) +
      ") after " + std::to_string(pops) +
      " pop(s) exceeds the declared window of " + std::to_string(window));
}

[[noreturn]] void elem_bounds_error(const char* what, const std::string& name,
                                    std::int64_t idx) {
  throw std::runtime_error(std::string(what) + ": " + name + "[" +
                           std::to_string(idx) + "]");
}

[[noreturn]] void buffer_peek_error(std::int64_t off, std::size_t live) {
  // Mirrors Channel::peek_item's message: the lowered buffer is the channel.
  throw std::runtime_error("peek(" + std::to_string(off) +
                           ") beyond channel contents (" +
                           std::to_string(live) + ")");
}

// ---- builder ----------------------------------------------------------------

class TraceBuilder {
 public:
  TraceBuilder(const FlatGraph& g, const std::vector<int>& order,
               const std::vector<std::int64_t>& reps,
               const std::vector<std::int64_t>& carry,
               const std::vector<std::int64_t>& traffic,
               const FusedBuildOptions& opts)
      : g_(g), order_(order), reps_(reps), carry_(carry), traffic_(traffic),
        opts_(opts) {}

  FusedProgramP build() {
    auto P = std::make_shared<FusedProgram>();
    prog_ = P.get();
    prog_->graph = &g_;
    prog_->order = order_;
    prog_->reps = reps_;

    prog_->edges.resize(g_.edges.size());
    for (std::size_t e = 0; e < g_.edges.size(); ++e) {
      FusedEdgeMeta& m = prog_->edges[e];
      m.internal = g_.edges[e].src >= 0 && g_.edges[e].dst >= 0;
      if (m.internal) {
        if (e >= carry_.size() || carry_[e] < 0 || traffic_[e] < 0) {
          fail("internal edge without carry/traffic sizing");
        }
        m.carry = carry_[e];
        m.traffic = traffic_[e];
        ++prog_->eliminated_channels;
      }
    }

    layout_actors();
    for (const int actor : order_) emit_actor(actor);
    prog_->code.push_back(FInstr{});  // Halt

    count_super();
    return P;
  }

 private:
  // Compile every AST filter once and assign each actor its slice of the
  // flat register / scalar-slot / array-slot files.
  void layout_actors() {
    const std::size_t n = g_.actors.size();
    if (n > 0xFFFF) fail("actor-id overflow");
    prog_->actors.resize(n);
    compiled_.resize(n);
    std::size_t reg_base = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const FlatActor& a = g_.actors[i];
      FusedActorMeta& meta = prog_->actors[i];
      meta.name = a.name;
      meta.reg_base = static_cast<std::uint32_t>(reg_base);
      meta.scalar_base = static_cast<std::uint32_t>(prog_->scalar_names.size());
      meta.array_base = static_cast<std::uint32_t>(prog_->array_names.size());
      switch (a.kind) {
        case FlatActor::Kind::Filter: {
          std::string why;
          compiled_[i] = compile_filter(a.node->filter, &why);
          if (!compiled_[i]) {
            fail("vm-fallback:" + a.name + " (" + why + ")");
          }
          const CompiledFilter& cf = *compiled_[i];
          if (!cf.work.sends.empty() || !cf.init.sends.empty()) {
            fail("teleport-send:" + a.name);
          }
          meta.reg_init = cf.work.reg_init;
          meta.peek_window = cf.peek_window;
          for (const auto& s : cf.scalar_slots) prog_->scalar_names.push_back(s);
          for (const auto& s : cf.array_slots) prog_->array_names.push_back(s);
          meta.num_scalars = static_cast<std::uint32_t>(cf.scalar_slots.size());
          meta.num_arrays = static_cast<std::uint32_t>(cf.array_slots.size());
          reg_base += cf.work.reg_init.size();
          break;
        }
        case FlatActor::Kind::Native:
          meta.native = true;
          break;
        case FlatActor::Kind::Splitter:
        case FlatActor::Kind::Joiner:
          // One scratch register (holds the item in flight).
          meta.reg_init.emplace_back();
          reg_base += 1;
          break;
      }
      if (reg_base > 0xFFFF) fail("register-file-overflow");
    }
    prog_->num_regs = reg_base;
    if (prog_->scalar_names.size() > 0xFFFF ||
        prog_->array_names.size() > 0xFFFF) {
      fail("state-slot overflow");
    }
  }

  void emit_actor(int actor) {
    const auto ai = static_cast<std::size_t>(actor);
    const FlatActor& a = g_.actors[ai];
    FInstr set{};
    set.op = FOp::SetActor;
    set.a = static_cast<std::uint16_t>(actor);
    prog_->code.push_back(set);

    switch (a.kind) {
      case FlatActor::Kind::Filter: {
        std::vector<FInstr> tmpl = translate_filter(actor);
        if (opts_.superinstructions) peephole(tmpl);
        for (std::int64_t r = 0; r < reps_[ai]; ++r) {
          FInstr reset{};
          reset.op = FOp::ResetRegs;
          reset.a = static_cast<std::uint16_t>(actor);
          prog_->code.push_back(reset);
          append_template(tmpl);
        }
        break;
      }
      case FlatActor::Kind::Native: {
        NativeFireArgs nf;
        nf.actor = actor;
        nf.in_edge = a.in_edges.empty() ? -1 : a.in_edges[0];
        nf.out_edge = a.out_edges.empty() ? -1 : a.out_edges[0];
        nf.in_real = nf.in_edge >= 0 && !edge_internal(nf.in_edge);
        nf.out_real = nf.out_edge >= 0 && !edge_internal(nf.out_edge);
        nf.flops = static_cast<std::int64_t>(a.node->native.cost_flops);
        nf.int_ops = static_cast<std::int64_t>(a.node->native.cost_ops -
                                               a.node->native.cost_flops);
        nf.channel = a.pop_rate() + a.push_rate();
        if (prog_->nats.size() >= 0xFFFF) fail("args-table overflow");
        FInstr I{};
        I.op = FOp::NativeFire;
        I.a = static_cast<std::uint16_t>(prog_->nats.size());
        prog_->nats.push_back(nf);
        for (std::int64_t r = 0; r < reps_[ai]; ++r) prog_->code.push_back(I);
        break;
      }
      case FlatActor::Kind::Splitter:
      case FlatActor::Kind::Joiner:
        for (std::int64_t r = 0; r < reps_[ai]; ++r) emit_sj_firing(actor);
        break;
    }
  }

  [[nodiscard]] bool edge_internal(int e) const {
    return prog_->edges[static_cast<std::size_t>(e)].internal;
  }

  // ---- filter template translation ------------------------------------------

  // Lower the compiled per-actor bytecode into trace form: registers and
  // state slots rebased, channel ops bound to this actor's edges.  Jumps stay
  // template-relative (an index == template length means "fall off the end",
  // where the VM's Halt sat).
  std::vector<FInstr> translate_filter(int actor) {
    const auto ai = static_cast<std::size_t>(actor);
    const FlatActor& a = g_.actors[ai];
    const FusedActorMeta& meta = prog_->actors[ai];
    const CompiledProgram& w = compiled_[ai]->work;
    const int in_e = a.in_edges.empty() ? -1 : a.in_edges[0];
    const int out_e = a.out_edges.empty() ? -1 : a.out_edges[0];

    const auto reg = [&](std::uint16_t r) {
      return static_cast<std::uint16_t>(meta.reg_base + r);
    };
    std::vector<FInstr> t;
    t.reserve(w.code.size());
    for (const VmInstr& V : w.code) {
      if (V.op == VmOp::Halt) break;  // exactly one, at the end
      FInstr I{};
      I.sub = V.sub;
      I.count = V.count;
      I.dst = V.dst;
      I.a = V.a;
      I.b = V.b;
      I.jump = V.jump;
      switch (V.op) {
        case VmOp::Move: I.op = FOp::Move; I.dst = reg(V.dst); I.a = reg(V.a); break;
        case VmOp::LoadScalar:
          I.op = FOp::LoadScalar;
          I.dst = reg(V.dst);
          I.a = static_cast<std::uint16_t>(meta.scalar_base + V.a);
          break;
        case VmOp::StoreScalar:
          I.op = FOp::StoreScalar;
          I.dst = reg(V.dst);
          I.a = static_cast<std::uint16_t>(meta.scalar_base + V.a);
          break;
        case VmOp::LoadElem:
          I.op = FOp::LoadElem;
          I.dst = reg(V.dst);
          I.a = static_cast<std::uint16_t>(meta.array_base + V.a);
          I.b = reg(V.b);
          break;
        case VmOp::StoreElem:
          I.op = FOp::StoreElem;
          I.dst = reg(V.dst);
          I.a = static_cast<std::uint16_t>(meta.array_base + V.a);
          I.b = reg(V.b);
          break;
        case VmOp::Peek:
          if (in_e < 0) fail("peek without an input edge in '" + a.name + "'");
          I.op = edge_internal(in_e) ? FOp::TPeek : FOp::RPeek;
          I.dst = reg(V.dst);
          I.a = reg(V.a);
          I.edge = in_e;
          break;
        case VmOp::Pop:
          if (in_e < 0) fail("pop without an input edge in '" + a.name + "'");
          I.op = edge_internal(in_e) ? FOp::TPop : FOp::RPop;
          I.dst = reg(V.dst);
          I.edge = in_e;
          break;
        case VmOp::PopN:
          if (in_e < 0) fail("pop without an input edge in '" + a.name + "'");
          I.op = edge_internal(in_e) ? FOp::TPopN : FOp::RPopN;
          I.a = reg(V.a);
          I.edge = in_e;
          break;
        case VmOp::Push:
          if (out_e < 0) fail("push without an output edge in '" + a.name + "'");
          I.op = edge_internal(out_e) ? FOp::TPush : FOp::RPush;
          I.dst = reg(V.dst);
          I.edge = out_e;
          break;
        case VmOp::Bin: I.op = FOp::Bin; I.dst = reg(V.dst); I.a = reg(V.a); I.b = reg(V.b); break;
        case VmOp::Un: I.op = FOp::Un; I.dst = reg(V.dst); I.a = reg(V.a); break;
        case VmOp::Truthy: I.op = FOp::Truthy; I.dst = reg(V.dst); I.a = reg(V.a); break;
        case VmOp::Jmp: I.op = FOp::Jmp; break;
        case VmOp::JmpIfFalse: I.op = FOp::JmpIfFalse; I.a = reg(V.a); break;
        case VmOp::JmpIfTrue: I.op = FOp::JmpIfTrue; I.a = reg(V.a); break;
        case VmOp::JmpIfGe: I.op = FOp::JmpIfGe; I.a = reg(V.a); I.b = reg(V.b); break;
        case VmOp::CheckStep: I.op = FOp::CheckStep; I.a = reg(V.a); break;
        case VmOp::ForInc: I.op = FOp::ForInc; I.dst = reg(V.dst); I.a = reg(V.a); break;
        case VmOp::Tally: I.op = FOp::Tally; break;
        case VmOp::Send: fail("teleport-send:" + a.name);
        case VmOp::Halt: break;  // unreachable
      }
      t.push_back(I);
    }
    return t;
  }

  // Append a (peepholed) template to the trace, relocating jumps.
  void append_template(const std::vector<FInstr>& tmpl) {
    const auto base = static_cast<std::int32_t>(prog_->code.size());
    for (const FInstr& I : tmpl) {
      prog_->code.push_back(I);
      if (I.jump >= 0) prog_->code.back().jump = base + I.jump;
    }
  }

  // ---- superinstruction selection -------------------------------------------

  // No instruction outside [start, start+len) may jump strictly inside it
  // (jumps *at* start land on the superinstruction, which re-enters the
  // pattern at its entry point -- safe).
  static bool region_clear(const std::vector<FInstr>& t, std::size_t start,
                           std::size_t len) {
    for (std::size_t j = 0; j < t.size(); ++j) {
      const std::int32_t tgt = t[j].jump;
      if (tgt > static_cast<std::int32_t>(start) &&
          tgt < static_cast<std::int32_t>(start + len)) {
        if (j < start || j >= start + len) return false;
      }
    }
    return true;
  }

  static bool all_distinct(std::initializer_list<std::uint16_t> regs) {
    for (auto i = regs.begin(); i != regs.end(); ++i) {
      for (auto j = i + 1; j != regs.end(); ++j) {
        if (*i == *j) return false;
      }
    }
    return true;
  }

  static bool is_peek(FOp op) { return op == FOp::TPeek || op == FOp::RPeek; }
  static bool is_pop(FOp op) { return op == FOp::TPop || op == FOp::RPop; }
  static bool is_push(FOp op) { return op == FOp::TPush || op == FOp::RPush; }

  // The exact 9-instruction (array) / 7-instruction (sum) loop shape the
  // bytecode compiler emits for `for (i) acc += peek(i) [* coef[i]]`:
  //
  //   i+0  jge  ri, rhi  -> end         i+0  jge  ri, rhi -> end
  //   i+1  tally 2 (int)                i+1  tally 2 (int)
  //   i+2  move slot, ri                i+2  move slot, ri
  //   i+3  peek p, [slot]               i+3  peek p, [slot]
  //   i+4  ld.e q, arr[slot]            i+4  bin add acc, acc, p
  //   i+5  bin mul m, p, q              i+5  forinc ri, rstep
  //   i+6  bin add acc, acc, m          i+6  jmp -> i
  //   i+7  forinc ri, rstep
  //   i+8  jmp -> i
  bool match_mac(const std::vector<FInstr>& t, std::size_t i,
                 MacLoopArgs* out, std::size_t* len) const {
    const FInstr& I0 = t[i];
    if (I0.op != FOp::JmpIfGe) return false;
    const std::uint16_t ri = I0.a, rhi = I0.b;
    for (const bool has_array : {true, false}) {
      const std::size_t n = has_array ? 9 : 7;
      if (i + n > t.size()) continue;
      if (I0.jump != static_cast<std::int32_t>(i + n)) continue;
      const FInstr& tl = t[i + 1];
      if (tl.op != FOp::Tally || tl.sub != 2 || tl.count != CountTag::IntOp) continue;
      const FInstr& mv = t[i + 2];
      if (mv.op != FOp::Move || mv.a != ri) continue;
      const std::uint16_t slot = mv.dst;
      const FInstr& pk = t[i + 3];
      if (!is_peek(pk.op) || pk.a != slot) continue;
      const std::uint16_t p = pk.dst;
      MacLoopArgs M;
      M.ri = ri;
      M.rhi = rhi;
      M.slot = slot;
      M.p = p;
      M.edge = pk.edge;
      M.real = pk.op == FOp::RPeek;
      M.has_array = has_array;
      std::size_t k = i + 4;
      if (has_array) {
        const FInstr& ld = t[k];
        if (ld.op != FOp::LoadElem || ld.b != slot) continue;
        M.q = ld.dst;
        M.arr = ld.a;
        const FInstr& mul = t[k + 1];
        if (mul.op != FOp::Bin || static_cast<BinOp>(mul.sub) != BinOp::Mul ||
            mul.count != CountTag::ByResult) {
          continue;
        }
        if (!((mul.a == M.p && mul.b == M.q) || (mul.a == M.q && mul.b == M.p))) {
          continue;
        }
        M.m = mul.dst;
        k += 2;
      }
      const FInstr& add = t[k];
      const std::uint16_t addend = has_array ? M.m : M.p;
      if (add.op != FOp::Bin || static_cast<BinOp>(add.sub) != BinOp::Add ||
          add.count != CountTag::ByResult || add.dst != add.a ||
          add.b != addend) {
        continue;
      }
      M.acc = add.dst;
      const FInstr& inc = t[k + 1];
      if (inc.op != FOp::ForInc || inc.dst != ri) continue;
      M.rstep = inc.a;
      const FInstr& jb = t[k + 2];
      if (jb.op != FOp::Jmp || jb.jump != static_cast<std::int32_t>(i)) continue;
      const bool distinct =
          has_array
              ? all_distinct({M.ri, M.rhi, M.rstep, M.slot, M.p, M.q, M.m, M.acc})
              : all_distinct({M.ri, M.rhi, M.rstep, M.slot, M.p, M.acc});
      if (!distinct) continue;
      if (!region_clear(t, i, n)) continue;
      *out = M;
      *len = n;
      return true;
    }
    return false;
  }

  // pop -> [compute] -> push, with nothing in between:
  //   [pop r][push r]                       pop-push
  //   [pop r][un  op d, r][push d]          pop-un-push
  //   [pop r][bin op d, a, b][push d]       pop-bin-push  (r in {a, b})
  bool match_pcp(const std::vector<FInstr>& t, std::size_t i, PcpArgs* out,
                 std::size_t* len) const {
    const FInstr& I0 = t[i];
    if (!is_pop(I0.op)) return false;
    const std::uint16_t r = I0.dst;
    PcpArgs P;
    P.in_edge = I0.edge;
    P.in_real = I0.op == FOp::RPop;
    P.rpop = r;
    if (i + 1 < t.size() && is_push(t[i + 1].op) && t[i + 1].dst == r) {
      P.kind = PcpArgs::Kind::Plain;
      P.rres = r;
      P.out_edge = t[i + 1].edge;
      P.out_real = t[i + 1].op == FOp::RPush;
      if (!region_clear(t, i, 2)) return false;
      *out = P;
      *len = 2;
      return true;
    }
    if (i + 2 >= t.size() || !is_push(t[i + 2].op)) return false;
    const FInstr& op = t[i + 1];
    const FInstr& ps = t[i + 2];
    if (ps.dst != op.dst) return false;
    if (op.op == FOp::Un && op.a == r) {
      P.kind = PcpArgs::Kind::Un;
    } else if (op.op == FOp::Bin && (op.a == r || op.b == r)) {
      P.kind = PcpArgs::Kind::Bin;
    } else {
      return false;
    }
    P.sub = op.sub;
    P.tag = op.count;
    P.a = op.a;
    P.b = op.b;
    P.rres = op.dst;
    P.out_edge = ps.edge;
    P.out_real = ps.op == FOp::RPush;
    if (!region_clear(t, i, 3)) return false;
    *out = P;
    *len = 3;
    return true;
  }

  // Rewrite a filter template in place, replacing matched windows with
  // superinstructions and remapping every jump through the index map.
  void peephole(std::vector<FInstr>& t) {
    std::vector<FInstr> out;
    out.reserve(t.size());
    // new_index[old] for every old position, plus the one-past-the-end slot
    // (jump targets may point at the stripped Halt position).
    std::vector<std::int32_t> new_index(t.size() + 1, 0);
    std::size_t i = 0;
    while (i < t.size()) {
      MacLoopArgs M;
      PcpArgs P;
      std::size_t len = 0;
      if (match_mac(t, i, &M, &len)) {
        if (prog_->macs.size() >= 0xFFFF) fail("args-table overflow");
        FInstr I{};
        I.op = FOp::MacLoop;
        I.a = static_cast<std::uint16_t>(prog_->macs.size());
        prog_->macs.push_back(M);
        for (std::size_t k = 0; k < len; ++k) {
          new_index[i + k] = static_cast<std::int32_t>(out.size());
        }
        out.push_back(I);
        i += len;
      } else if (match_pcp(t, i, &P, &len)) {
        if (prog_->pcps.size() >= 0xFFFF) fail("args-table overflow");
        FInstr I{};
        I.op = FOp::PopComputePush;
        I.a = static_cast<std::uint16_t>(prog_->pcps.size());
        prog_->pcps.push_back(P);
        for (std::size_t k = 0; k < len; ++k) {
          new_index[i + k] = static_cast<std::int32_t>(out.size());
        }
        out.push_back(I);
        i += len;
      } else {
        new_index[i] = static_cast<std::int32_t>(out.size());
        out.push_back(t[i]);
        ++i;
      }
    }
    new_index[t.size()] = static_cast<std::int32_t>(out.size());
    for (FInstr& I : out) {
      if (I.jump >= 0) I.jump = new_index[static_cast<std::size_t>(I.jump)];
    }
    t = std::move(out);
  }

  // ---- splitter / joiner synthesis ------------------------------------------

  // One firing, with counting identical to Executor::fire: a round-robin
  // splitter counts 2 per item even on a dangling branch; a duplicate
  // splitter counts 1 + fan-out per firing; a joiner skips dangling inputs
  // entirely.  Runs of identical item moves become copy-run/dup-run
  // superinstructions and merge across adjacent firings.
  void emit_sj_firing(int actor) {
    const auto ai = static_cast<std::size_t>(actor);
    const FlatActor& a = g_.actors[ai];
    const auto reg =
        static_cast<std::uint16_t>(prog_->actors[ai].reg_base);
    if (a.kind == FlatActor::Kind::Splitter) {
      const int in_e = a.in_edges.empty() ? -1 : a.in_edges[0];
      if (in_e < 0) fail("splitter without an input edge in '" + a.name + "'");
      if (a.sj == ir::SJKind::Duplicate) {
        CopyRunArgs C;
        C.src = in_e;
        C.src_real = !edge_internal(in_e);
        C.n = 1;
        C.reg = reg;
        int dangling = 0;
        for (const int eid : a.out_edges) {
          if (eid >= 0) {
            C.dst.push_back(eid);
            C.dst_real.push_back(edge_internal(eid) ? 0 : 1);
          } else {
            ++dangling;
          }
        }
        if (opts_.superinstructions && dangling == 0 && !C.dst.empty()) {
          append_copy(std::move(C));
        } else {
          emit_raw_move(in_e, reg, C.dst, /*extra_channel=*/dangling);
        }
      } else {
        for (std::size_t p = 0; p < a.out_rate.size(); ++p) {
          const int w = a.out_rate[p];
          if (w <= 0) continue;
          const int eid = p < a.out_edges.size() ? a.out_edges[p] : -1;
          if (opts_.superinstructions && eid >= 0) {
            CopyRunArgs C;
            C.src = in_e;
            C.src_real = !edge_internal(in_e);
            C.dst.push_back(eid);
            C.dst_real.push_back(edge_internal(eid) ? 0 : 1);
            C.n = w;
            C.reg = reg;
            append_copy(std::move(C));
          } else {
            std::vector<std::int32_t> dst;
            if (eid >= 0) dst.push_back(eid);
            for (int k = 0; k < w; ++k) {
              emit_raw_move(in_e, reg, dst, eid >= 0 ? 0 : 1);
            }
          }
        }
      }
    } else {  // Joiner
      const int out_e = a.out_edges.empty() ? -1 : a.out_edges[0];
      if (out_e < 0) fail("joiner without an output edge in '" + a.name + "'");
      for (std::size_t p = 0; p < a.in_rate.size(); ++p) {
        const int w = a.in_rate[p];
        if (w <= 0) continue;
        const int eid = p < a.in_edges.size() ? a.in_edges[p] : -1;
        if (eid < 0) continue;  // Executor skips dangling inputs, uncounted
        if (opts_.superinstructions) {
          CopyRunArgs C;
          C.src = eid;
          C.src_real = !edge_internal(eid);
          C.dst.push_back(out_e);
          C.dst_real.push_back(edge_internal(out_e) ? 0 : 1);
          C.n = w;
          C.reg = reg;
          append_copy(std::move(C));
        } else {
          for (int k = 0; k < w; ++k) {
            emit_raw_move(eid, reg, {out_e}, 0);
          }
        }
      }
    }
  }

  // pop src -> push each dst, plus `extra_channel` counted-but-unrouted items
  // (a dangling splitter branch still counts its channel traffic).
  void emit_raw_move(int src, std::uint16_t reg,
                     const std::vector<std::int32_t>& dst, int extra_channel) {
    FInstr pop{};
    pop.op = edge_internal(src) ? FOp::TPop : FOp::RPop;
    pop.count = CountTag::Channel;
    pop.dst = reg;
    pop.edge = src;
    prog_->code.push_back(pop);
    for (const std::int32_t d : dst) {
      FInstr push{};
      push.op = edge_internal(d) ? FOp::TPush : FOp::RPush;
      push.count = CountTag::Channel;
      push.dst = reg;
      push.edge = d;
      prog_->code.push_back(push);
    }
    while (extra_channel > 0) {
      const int chunk = extra_channel > 255 ? 255 : extra_channel;
      FInstr tally{};
      tally.op = FOp::Tally;
      tally.sub = static_cast<std::uint8_t>(chunk);
      tally.count = CountTag::Channel;
      prog_->code.push_back(tally);
      extra_channel -= chunk;
    }
  }

  // Append a copy-run, merging into the previous instruction when it is an
  // identical run (adjacent firings of the same splitter/joiner port).
  void append_copy(CopyRunArgs args) {
    if (!prog_->code.empty() && prog_->code.back().op == FOp::CopyRun) {
      CopyRunArgs& prev = prog_->copies[prog_->code.back().a];
      if (prev.src == args.src && prev.src_real == args.src_real &&
          prev.dst == args.dst && prev.dst_real == args.dst_real &&
          prev.reg == args.reg) {
        prev.n += args.n;
        return;
      }
    }
    if (prog_->copies.size() >= 0xFFFF) fail("args-table overflow");
    FInstr I{};
    I.op = FOp::CopyRun;
    I.a = static_cast<std::uint16_t>(prog_->copies.size());
    prog_->copies.push_back(std::move(args));
    prog_->code.push_back(I);
  }

  void count_super() {
    for (const FInstr& I : prog_->code) {
      switch (I.op) {
        case FOp::MacLoop:
          ++prog_->super[prog_->macs[I.a].has_array ? "mac-loop" : "sum-loop"];
          break;
        case FOp::PopComputePush:
          switch (prog_->pcps[I.a].kind) {
            case PcpArgs::Kind::Plain: ++prog_->super["pop-push"]; break;
            case PcpArgs::Kind::Bin: ++prog_->super["pop-bin-push"]; break;
            case PcpArgs::Kind::Un: ++prog_->super["pop-un-push"]; break;
          }
          break;
        case FOp::CopyRun:
          ++prog_->super[prog_->copies[I.a].dst.size() > 1 ? "dup-run"
                                                           : "copy-run"];
          break;
        default:
          break;
      }
    }
  }

  const FlatGraph& g_;
  const std::vector<int>& order_;
  const std::vector<std::int64_t>& reps_;
  const std::vector<std::int64_t>& carry_;
  const std::vector<std::int64_t>& traffic_;
  FusedBuildOptions opts_;
  FusedProgram* prog_{nullptr};
  std::vector<CompiledFilterP> compiled_;
};

// Tape stubs for natives at the graph boundary with no edge at all.
class NullIn final : public ir::InTape {
 public:
  double peek_item(int) override {
    throw std::runtime_error("source filter attempted to peek");
  }
  double pop_item() override {
    throw std::runtime_error("source filter attempted to pop");
  }
};

class NullOut final : public ir::OutTape {
 public:
  void push_item(double) override {
    throw std::runtime_error("sink filter attempted to push");
  }
};

NullIn g_null_in;
NullOut g_null_out;

}  // namespace

FusedProgramP build_fused(const FlatGraph& g, const std::vector<int>& order,
                          const std::vector<std::int64_t>& reps,
                          const std::vector<std::int64_t>& carry,
                          const std::vector<std::int64_t>& traffic,
                          std::string* reason, const FusedBuildOptions& opts) {
  try {
    return TraceBuilder(g, order, reps, carry, traffic, opts).build();
  } catch (const BuildFail& f) {
    if (reason) *reason = f.reason;
    return nullptr;
  }
}

// ---- execution --------------------------------------------------------------

// Uncounted tape adapters over a lowered edge, for NativeFire (native filters
// count statically, exactly like Executor::fire does for them).
class FusedExec::BufIn final : public ir::InTape {
 public:
  explicit BufIn(EdgeState& s) : s_(s) {}
  double peek_item(int offset) override {
    if (offset < 0 ||
        s_.rd + static_cast<std::size_t>(offset) >= s_.wr) {
      buffer_peek_error(offset, s_.wr - s_.rd);
    }
    return s_.buf[s_.rd + static_cast<std::size_t>(offset)];
  }
  double pop_item() override {
    if (s_.rd >= s_.wr) throw std::runtime_error("pop from empty channel");
    return s_.buf[s_.rd++];
  }
  void pop_many(int n) override {
    if (n <= 0) return;
    if (s_.rd + static_cast<std::size_t>(n) > s_.wr) {
      throw std::runtime_error("pop from empty channel");
    }
    s_.rd += static_cast<std::size_t>(n);
  }

 private:
  EdgeState& s_;
};

class FusedExec::BufOut final : public ir::OutTape {
 public:
  explicit BufOut(EdgeState& s) : s_(s) {}
  void push_item(double v) override {
    if (s_.wr >= s_.buf.size()) {
      throw std::logic_error("fused trace buffer overflow");
    }
    s_.buf[s_.wr++] = v;
  }

 private:
  EdgeState& s_;
};

FusedExec::FusedExec(FusedProgramP prog, std::vector<FilterState>& states,
                     const std::vector<std::unique_ptr<Channel>>& chans,
                     const std::vector<std::unique_ptr<ir::NativeState>>& nstates)
    : prog_(std::move(prog)) {
  regs_.resize(prog_->num_regs);
  scalars_.resize(prog_->scalar_names.size());
  arrays_.resize(prog_->array_names.size());
  for (std::size_t i = 0; i < prog_->actors.size(); ++i) {
    const FusedActorMeta& m = prog_->actors[i];
    FilterState& st = states[i];
    for (std::uint32_t k = 0; k < m.num_scalars; ++k) {
      const std::string& name = prog_->scalar_names[m.scalar_base + k];
      auto it = st.scalars.find(name);
      if (it == st.scalars.end()) {
        throw std::logic_error("fused bind: state has no scalar '" + name + "'");
      }
      scalars_[m.scalar_base + k] = &it->second;
    }
    for (std::uint32_t k = 0; k < m.num_arrays; ++k) {
      const std::string& name = prog_->array_names[m.array_base + k];
      auto it = st.arrays.find(name);
      if (it == st.arrays.end()) {
        throw std::logic_error("fused bind: state has no array '" + name + "'");
      }
      arrays_[m.array_base + k] = &it->second;
    }
  }
  chans_.reserve(chans.size());
  for (const auto& c : chans) chans_.push_back(c.get());
  nstates_.reserve(nstates.size());
  for (const auto& s : nstates) nstates_.push_back(s.get());
  ebuf_.resize(prog_->edges.size());
  for (std::size_t e = 0; e < prog_->edges.size(); ++e) {
    const FusedEdgeMeta& m = prog_->edges[e];
    if (m.internal) {
      ebuf_[e].buf.resize(static_cast<std::size_t>(m.carry + m.traffic));
    }
  }
}

bool FusedExec::activate() {
  if (active_) return true;
  for (std::size_t e = 0; e < prog_->edges.size(); ++e) {
    const FusedEdgeMeta& m = prog_->edges[e];
    if (m.internal &&
        chans_[e]->size() != static_cast<std::size_t>(m.carry)) {
      return false;  // graph is mid-iteration (manual fire); run per-actor
    }
  }
  for (std::size_t e = 0; e < prog_->edges.size(); ++e) {
    const FusedEdgeMeta& m = prog_->edges[e];
    if (!m.internal) continue;
    EdgeState& s = ebuf_[e];
    chans_[e]->drain_items(s.buf.data());
    s.rd = 0;
    s.wr = static_cast<std::size_t>(m.carry);
  }
  active_ = true;
  return true;
}

void FusedExec::deactivate() {
  if (!active_) return;
  for (std::size_t e = 0; e < prog_->edges.size(); ++e) {
    const FusedEdgeMeta& m = prog_->edges[e];
    if (!m.internal) continue;
    EdgeState& s = ebuf_[e];
    chans_[e]->restore_items(s.buf.data(), static_cast<std::size_t>(m.carry));
    s.rd = s.wr = 0;
  }
  active_ = false;
}

void FusedExec::run_iteration(OpCounts* actor_counts) {
  if (!active_) {
    throw std::logic_error("FusedExec::run_iteration before activate()");
  }
  if (actor_counts != nullptr) {
    run<true>(actor_counts);
  } else {
    run<false>(nullptr);
  }
  finish_iteration();
}

void FusedExec::finish_iteration() {
  for (std::size_t e = 0; e < prog_->edges.size(); ++e) {
    const FusedEdgeMeta& m = prog_->edges[e];
    if (!m.internal) continue;
    EdgeState& s = ebuf_[e];
    const auto carry = static_cast<std::size_t>(m.carry);
    const auto traffic = static_cast<std::size_t>(m.traffic);
    if (s.rd != traffic || s.wr != carry + traffic) {
      throw std::logic_error("fused trace left channel " + std::to_string(e) +
                             " at an unexpected level");
    }
    if (traffic > 0 && carry > 0) {
      std::memmove(s.buf.data(), s.buf.data() + traffic,
                   carry * sizeof(double));
    }
    s.rd = 0;
    s.wr = carry;
    chans_[e]->advance_counters(static_cast<std::int64_t>(traffic),
                                static_cast<std::int64_t>(traffic));
  }
}

template <bool kCount>
void FusedExec::run(OpCounts* actor_counts) {
  Value* const regs = regs_.data();
  const FInstr* const code = prog_->code.data();
  EdgeState* const ebuf = ebuf_.data();
  const bool debug = debug_channel_checks();
  OpCounts* cur = nullptr;
  const FusedActorMeta* meta = nullptr;
  std::int64_t window = 0;
  std::int64_t pops = 0;
  std::int32_t pc = 0;

  const auto tally = [&](CountTag tag, const Value& r) {
    if constexpr (kCount) {
      switch (tag) {
        case CountTag::None: break;
        case CountTag::IntOp: ++cur->int_ops; break;
        case CountTag::Flop: ++cur->flops; break;
        case CountTag::Div: ++cur->divs; break;
        case CountTag::Trans: ++cur->trans; break;
        case CountTag::Mem: ++cur->mem; break;
        case CountTag::Channel: ++cur->channel; break;
        case CountTag::ByResult:
          r.is_int() ? ++cur->int_ops : ++cur->flops;
          break;
      }
    } else {
      (void)tag;
      (void)r;
    }
  };

  // Lowered-buffer channel primitives (bounds mirror Channel's).
  const auto tpop = [&](std::int32_t e) {
    EdgeState& s = ebuf[e];
    if (s.rd >= s.wr) throw std::runtime_error("pop from empty channel");
    return s.buf[s.rd++];
  };
  const auto tpush = [&](std::int32_t e, double v) {
    EdgeState& s = ebuf[e];
    if (s.wr >= s.buf.size()) {
      throw std::logic_error("fused trace buffer overflow");
    }
    s.buf[s.wr++] = v;
  };

  for (;;) {
    const FInstr& I = code[pc];
    switch (I.op) {
      case FOp::Move:
        regs[I.dst] = regs[I.a];
        ++pc;
        break;
      case FOp::LoadScalar:
        if constexpr (kCount) ++cur->mem;
        regs[I.dst] = *scalars_[I.a];
        ++pc;
        break;
      case FOp::StoreScalar:
        if constexpr (kCount) ++cur->mem;
        *scalars_[I.a] = regs[I.dst];
        ++pc;
        break;
      case FOp::LoadElem: {
        const std::int64_t idx = regs[I.b].as_int();
        const auto& arr = *arrays_[I.a];
        if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
          elem_bounds_error("array index out of bounds",
                            prog_->array_names[I.a], idx);
        }
        if constexpr (kCount) ++cur->mem;
        regs[I.dst] = arr[static_cast<std::size_t>(idx)];
        ++pc;
        break;
      }
      case FOp::StoreElem: {
        const std::int64_t idx = regs[I.b].as_int();
        auto& arr = *arrays_[I.a];
        if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
          elem_bounds_error("array store out of bounds",
                            prog_->array_names[I.a], idx);
        }
        if constexpr (kCount) ++cur->mem;
        arr[static_cast<std::size_t>(idx)] = regs[I.dst];
        ++pc;
        break;
      }
      case FOp::Bin: {
        const Value r =
            apply_bin(static_cast<BinOp>(I.sub), regs[I.a], regs[I.b]);
        tally(I.count, r);
        regs[I.dst] = r;
        ++pc;
        break;
      }
      case FOp::Un:
        // Neg/Abs count by operand type, exactly as in the VM.
        tally(I.count, regs[I.a]);
        regs[I.dst] = apply_un(static_cast<UnOp>(I.sub), regs[I.a]);
        ++pc;
        break;
      case FOp::Truthy:
        regs[I.dst] = Value(regs[I.a].truthy());
        ++pc;
        break;
      case FOp::Jmp:
        pc = I.jump;
        break;
      case FOp::JmpIfFalse:
        pc = regs[I.a].truthy() ? pc + 1 : I.jump;
        break;
      case FOp::JmpIfTrue:
        pc = regs[I.a].truthy() ? I.jump : pc + 1;
        break;
      case FOp::JmpIfGe:
        pc = regs[I.a].as_int() >= regs[I.b].as_int() ? I.jump : pc + 1;
        break;
      case FOp::CheckStep:
        if (regs[I.a].as_int() <= 0) {
          throw std::runtime_error("for loop step must be positive");
        }
        ++pc;
        break;
      case FOp::ForInc:
        regs[I.dst] = Value(regs[I.dst].as_int() + regs[I.a].as_int());
        ++pc;
        break;
      case FOp::Tally:
        if constexpr (kCount) {
          switch (I.count) {
            case CountTag::IntOp: cur->int_ops += I.sub; break;
            case CountTag::Channel: cur->channel += I.sub; break;
            case CountTag::Flop: cur->flops += I.sub; break;
            case CountTag::Div: cur->divs += I.sub; break;
            case CountTag::Trans: cur->trans += I.sub; break;
            case CountTag::Mem: cur->mem += I.sub; break;
            case CountTag::None: case CountTag::ByResult: break;
          }
        }
        ++pc;
        break;
      case FOp::RPeek: {
        const std::int64_t off = regs[I.a].as_int();
        if (debug && (off < 0 || pops + off >= window)) {
          peek_bounds_error(meta->name, off, pops, window);
        }
        if constexpr (kCount) ++cur->channel;
        regs[I.dst] = Value(chans_[I.edge]->peek_item(static_cast<int>(off)));
        ++pc;
        break;
      }
      case FOp::RPop:
        if constexpr (kCount) ++cur->channel;
        ++pops;
        regs[I.dst] = Value(chans_[I.edge]->pop_item());
        ++pc;
        break;
      case FOp::RPopN: {
        const std::int64_t n = regs[I.a].as_int();
        if (n > 0) {
          if constexpr (kCount) cur->channel += n;
          pops += n;
          chans_[I.edge]->pop_many(static_cast<int>(n));
        }
        ++pc;
        break;
      }
      case FOp::RPush:
        if constexpr (kCount) ++cur->channel;
        chans_[I.edge]->push_item(regs[I.dst].as_double());
        ++pc;
        break;
      case FOp::TPeek: {
        const std::int64_t off = regs[I.a].as_int();
        if (debug && (off < 0 || pops + off >= window)) {
          peek_bounds_error(meta->name, off, pops, window);
        }
        EdgeState& s = ebuf[I.edge];
        if (off < 0 ||
            s.rd + static_cast<std::size_t>(off) >= s.wr) {
          buffer_peek_error(off, s.wr - s.rd);
        }
        if constexpr (kCount) ++cur->channel;
        regs[I.dst] = Value(s.buf[s.rd + static_cast<std::size_t>(off)]);
        ++pc;
        break;
      }
      case FOp::TPop:
        if constexpr (kCount) ++cur->channel;
        ++pops;
        regs[I.dst] = Value(tpop(I.edge));
        ++pc;
        break;
      case FOp::TPopN: {
        const std::int64_t n = regs[I.a].as_int();
        if (n > 0) {
          EdgeState& s = ebuf[I.edge];
          if (s.rd + static_cast<std::size_t>(n) > s.wr) {
            throw std::runtime_error("pop from empty channel");
          }
          if constexpr (kCount) cur->channel += n;
          pops += n;
          s.rd += static_cast<std::size_t>(n);
        }
        ++pc;
        break;
      }
      case FOp::TPush:
        if constexpr (kCount) ++cur->channel;
        tpush(I.edge, regs[I.dst].as_double());
        ++pc;
        break;
      case FOp::SetActor:
        meta = &prog_->actors[I.a];
        window = meta->peek_window;
        if constexpr (kCount) cur = &actor_counts[I.a];
        ++pc;
        break;
      case FOp::ResetRegs: {
        const FusedActorMeta& m = prog_->actors[I.a];
        std::copy(m.reg_init.begin(), m.reg_init.end(), regs + m.reg_base);
        pops = 0;
        ++pc;
        break;
      }
      case FOp::MacLoop: {
        const MacLoopArgs& M = prog_->macs[I.a];
        std::int64_t i = regs[M.ri].as_int();
        const std::int64_t hi = regs[M.rhi].as_int();
        const std::int64_t st = regs[M.rstep].as_int();
        if (i < hi) {
          Value acc = regs[M.acc];
          const std::vector<Value>* arr =
              M.has_array ? arrays_[M.arr] : nullptr;
          EdgeState* s = M.real ? nullptr : &ebuf[M.edge];
          Channel* const ch = M.real ? chans_[M.edge] : nullptr;
          for (; i < hi; i += st) {
            if constexpr (kCount) cur->int_ops += 2;
            if (debug && (i < 0 || pops + i >= window)) {
              peek_bounds_error(meta->name, i, pops, window);
            }
            double pd;
            if (s != nullptr) {
              if (i < 0 || s->rd + static_cast<std::size_t>(i) >= s->wr) {
                buffer_peek_error(i, s->wr - s->rd);
              }
              pd = s->buf[s->rd + static_cast<std::size_t>(i)];
            } else {
              pd = ch->peek_item(static_cast<int>(i));
            }
            if constexpr (kCount) ++cur->channel;
            Value term;
            if (arr != nullptr) {
              if (i < 0 || static_cast<std::size_t>(i) >= arr->size()) {
                elem_bounds_error("array index out of bounds",
                                  prog_->array_names[M.arr], i);
              }
              if constexpr (kCount) ++cur->mem;
              const Value& ev = (*arr)[static_cast<std::size_t>(i)];
              if (!ev.is_int()) {
                // double * double: same result, one tag test instead of two
                // Value round trips.
                const double td = pd * ev.as_double();
                term = Value(td);
                if constexpr (kCount) ++cur->flops;
              } else {
                term = apply_bin(BinOp::Mul, Value(pd), ev);
                tally(CountTag::ByResult, term);
              }
            } else {
              term = Value(pd);
            }
            if (!acc.is_int() && !term.is_int()) {
              acc = Value(acc.as_double() + term.as_double());
              if constexpr (kCount) ++cur->flops;
            } else {
              acc = apply_bin(BinOp::Add, acc, term);
              tally(CountTag::ByResult, acc);
            }
          }
          regs[M.acc] = acc;
          // The loop-variable local holds its final iteration's value, as
          // after the VM loop.  (The constituent temporaries p/q/m are dead:
          // expression temps are always rewritten before any later read.)
          regs[M.slot] = Value(i - st);
        }
        regs[M.ri] = Value(i);
        ++pc;
        break;
      }
      case FOp::PopComputePush: {
        const PcpArgs& P = prog_->pcps[I.a];
        double vd;
        if (P.in_real) {
          vd = chans_[P.in_edge]->pop_item();
        } else {
          vd = tpop(P.in_edge);
        }
        if constexpr (kCount) ++cur->channel;
        ++pops;
        regs[P.rpop] = Value(vd);
        double outd = vd;
        switch (P.kind) {
          case PcpArgs::Kind::Plain:
            outd = vd;
            break;
          case PcpArgs::Kind::Bin: {
            const Value r =
                apply_bin(static_cast<BinOp>(P.sub), regs[P.a], regs[P.b]);
            tally(P.tag, r);
            regs[P.rres] = r;
            outd = r.as_double();
            break;
          }
          case PcpArgs::Kind::Un: {
            tally(P.tag, regs[P.a]);
            const Value r = apply_un(static_cast<UnOp>(P.sub), regs[P.a]);
            regs[P.rres] = r;
            outd = r.as_double();
            break;
          }
        }
        if constexpr (kCount) ++cur->channel;
        if (P.out_real) {
          chans_[P.out_edge]->push_item(outd);
        } else {
          tpush(P.out_edge, outd);
        }
        ++pc;
        break;
      }
      case FOp::CopyRun: {
        const CopyRunArgs& C = prog_->copies[I.a];
        if constexpr (kCount) {
          cur->channel +=
              C.n * (1 + static_cast<std::int64_t>(C.dst.size()));
        }
        if (C.n > 0) {
          double last = 0.0;
          if (!C.src_real && C.dst.size() == 1 && C.dst_real[0] == 0) {
            // buffer -> buffer run: bulk copy
            EdgeState& si = ebuf[C.src];
            EdgeState& so = ebuf[C.dst[0]];
            const auto n = static_cast<std::size_t>(C.n);
            if (si.rd + n > si.wr) {
              throw std::runtime_error("pop from empty channel");
            }
            if (so.wr + n > so.buf.size()) {
              throw std::logic_error("fused trace buffer overflow");
            }
            std::memcpy(so.buf.data() + so.wr, si.buf.data() + si.rd,
                        n * sizeof(double));
            si.rd += n;
            so.wr += n;
            last = so.buf[so.wr - 1];
          } else {
            for (std::int64_t k = 0; k < C.n; ++k) {
              const double v =
                  C.src_real ? chans_[C.src]->pop_item() : tpop(C.src);
              for (std::size_t d = 0; d < C.dst.size(); ++d) {
                if (C.dst_real[d] != 0) {
                  chans_[C.dst[d]]->push_item(v);
                } else {
                  tpush(C.dst[d], v);
                }
              }
              last = v;
            }
          }
          regs[C.reg] = Value(last);
        }
        ++pc;
        break;
      }
      case FOp::NativeFire: {
        const NativeFireArgs& N = prog_->nats[I.a];
        const FlatActor& a = prog_->graph->actors[static_cast<std::size_t>(N.actor)];
        EdgeState dummy;
        BufIn bin(N.in_edge >= 0 && !N.in_real ? ebuf[N.in_edge] : dummy);
        BufOut bout(N.out_edge >= 0 && !N.out_real ? ebuf[N.out_edge] : dummy);
        ir::InTape* in = &g_null_in;
        ir::OutTape* out = &g_null_out;
        if (N.in_edge >= 0) {
          in = N.in_real ? static_cast<ir::InTape*>(chans_[N.in_edge]) : &bin;
        }
        if (N.out_edge >= 0) {
          out = N.out_real ? static_cast<ir::OutTape*>(chans_[N.out_edge])
                           : &bout;
        }
        a.node->native.work(nstates_[static_cast<std::size_t>(N.actor)], *in,
                            *out);
        if constexpr (kCount) {
          cur->flops += N.flops;
          cur->int_ops += N.int_ops;
          cur->channel += N.channel;
        }
        ++pc;
        break;
      }
      case FOp::Halt:
        return;
    }
  }
}

// ---- disassembly ------------------------------------------------------------

namespace {

const char* fop_name(FOp op) {
  switch (op) {
    case FOp::Move: return "move";
    case FOp::LoadScalar: return "ld.s";
    case FOp::StoreScalar: return "st.s";
    case FOp::LoadElem: return "ld.e";
    case FOp::StoreElem: return "st.e";
    case FOp::Bin: return "bin";
    case FOp::Un: return "un";
    case FOp::Truthy: return "truthy";
    case FOp::Jmp: return "jmp";
    case FOp::JmpIfFalse: return "jf";
    case FOp::JmpIfTrue: return "jt";
    case FOp::JmpIfGe: return "jge";
    case FOp::CheckStep: return "chkstep";
    case FOp::ForInc: return "forinc";
    case FOp::Tally: return "tally";
    case FOp::RPeek: return "r.peek";
    case FOp::RPop: return "r.pop";
    case FOp::RPopN: return "r.popn";
    case FOp::RPush: return "r.push";
    case FOp::TPeek: return "t.peek";
    case FOp::TPop: return "t.pop";
    case FOp::TPopN: return "t.popn";
    case FOp::TPush: return "t.push";
    case FOp::SetActor: return "setactor";
    case FOp::ResetRegs: return "resetregs";
    case FOp::MacLoop: return "macloop";
    case FOp::PopComputePush: return "pcp";
    case FOp::CopyRun: return "copyrun";
    case FOp::NativeFire: return "nativefire";
    case FOp::Halt: return "halt";
  }
  return "?";
}

}  // namespace

std::string FusedProgram::disassemble() const {
  std::string out;
  out += "; fused steady-state trace: " + std::to_string(code.size()) +
         " instruction(s), " + std::to_string(num_regs) + " register(s), " +
         std::to_string(eliminated_channels) + " channel(s) lowered\n";
  for (const auto& [name, n] : super) {
    out += ";   super " + name + " x " + std::to_string(n) + "\n";
  }
  for (std::size_t i = 0; i < code.size(); ++i) {
    const FInstr& I = code[i];
    out += std::to_string(i) + ": " + fop_name(I.op);
    switch (I.op) {
      case FOp::Bin:
        out += " " + std::string(ir::to_string(static_cast<BinOp>(I.sub)));
        break;
      case FOp::Un:
        out += " " + std::string(ir::to_string(static_cast<UnOp>(I.sub)));
        break;
      case FOp::SetActor:
      case FOp::ResetRegs:
        out += " " + actors[I.a].name;
        break;
      case FOp::MacLoop: {
        const MacLoopArgs& M = macs[I.a];
        out += std::string(" ; ") + (M.has_array ? "mac-loop" : "sum-loop") +
               " acc=r" + std::to_string(M.acc) + " i=r" +
               std::to_string(M.ri) + " hi=r" + std::to_string(M.rhi);
        if (M.has_array) out += " coef=" + array_names[M.arr];
        out += " edge=" + std::to_string(M.edge) + (M.real ? " (ring)" : "");
        break;
      }
      case FOp::PopComputePush: {
        const PcpArgs& P = pcps[I.a];
        switch (P.kind) {
          case PcpArgs::Kind::Plain: out += " ; pop-push"; break;
          case PcpArgs::Kind::Bin:
            out += " ; pop-bin-push " +
                   std::string(ir::to_string(static_cast<BinOp>(P.sub)));
            break;
          case PcpArgs::Kind::Un:
            out += " ; pop-un-push " +
                   std::string(ir::to_string(static_cast<UnOp>(P.sub)));
            break;
        }
        out += " in=" + std::to_string(P.in_edge) +
               " out=" + std::to_string(P.out_edge);
        break;
      }
      case FOp::CopyRun: {
        const CopyRunArgs& C = copies[I.a];
        out += std::string(" ; ") +
               (C.dst.size() > 1 ? "dup-run" : "copy-run") + " n=" +
               std::to_string(C.n) + " src=" + std::to_string(C.src) + " dst=";
        for (std::size_t d = 0; d < C.dst.size(); ++d) {
          out += (d ? "," : "") + std::to_string(C.dst[d]);
        }
        break;
      }
      case FOp::NativeFire:
        out += " " + actors[static_cast<std::size_t>(nats[I.a].actor)].name;
        break;
      default:
        out += " dst=r" + std::to_string(I.dst) + " a=" + std::to_string(I.a) +
               " b=" + std::to_string(I.b);
        break;
    }
    if (I.jump >= 0) out += " ->" + std::to_string(I.jump);
    if (I.edge >= 0) out += " edge=" + std::to_string(I.edge);
    out += "\n";
  }
  return out;
}

// ---- typed (dual-plane) fused execution -------------------------------------
//
// TypedFusedExec mirrors FusedExec instruction for instruction: the same
// activation protocol, the same op counting, the same error strings thrown in
// the same order.  The differences are what typeflow proved safe: registers
// and (for the duration of an activation) filter state live in raw planes,
// CountTag::ByResult is pre-resolved, and the mac-loop superinstruction runs
// as a raw double* kernel when a hoisted precheck shows no per-element check
// can fire.

TypedFusedProgramP build_typed_fused(const FusedProgramP& base,
                                     const std::vector<FilterState>& states,
                                     std::string* refusal) {
  if (!base) return nullptr;
  TypedLowerInput in;
  in.code = &base->code;
  in.num_regs = base->num_regs;
  in.scalar_names = &base->scalar_names;
  in.array_names = &base->array_names;
  in.fused = base.get();
  in.loop = true;  // fused registers persist across iterations
  // Seed the state classes from the current (post-init) tags, per actor.
  in.scalar_seed.assign(base->scalar_names.size(), Tag::Int);
  in.array_seed.assign(base->array_names.size(), Tag::Int);
  for (std::size_t i = 0; i < base->actors.size(); ++i) {
    const FusedActorMeta& m = base->actors[i];
    const FilterState& st = states[i];
    for (std::uint32_t k = 0; k < m.num_scalars; ++k) {
      const std::string& name = base->scalar_names[m.scalar_base + k];
      auto it = st.scalars.find(name);
      if (it == st.scalars.end()) {
        if (refusal) *refusal = "unbound-state:" + m.name + "." + name;
        return nullptr;
      }
      in.scalar_seed[m.scalar_base + k] = value_tag(it->second);
    }
    for (std::uint32_t k = 0; k < m.num_arrays; ++k) {
      const std::string& name = base->array_names[m.array_base + k];
      auto it = st.arrays.find(name);
      if (it == st.arrays.end()) {
        if (refusal) *refusal = "unbound-state:" + m.name + "." + name;
        return nullptr;
      }
      Tag t = it->second.empty() ? Tag::Int : value_tag(it->second.front());
      for (const auto& v : it->second) t = join_tag(t, value_tag(v));
      in.array_seed[m.array_base + k] = t;
    }
  }

  auto out = std::make_shared<TypedFusedProgram>();
  out->base = base;
  if (!typed_lower(in, &out->code, refusal)) return nullptr;
  return out;
}

// Uncounted tape adapters over a lowered edge for NativeFire, twins of
// FusedExec's (native filters count statically).
class TypedFusedExec::BufIn final : public ir::InTape {
 public:
  explicit BufIn(EdgeState& s) : s_(s) {}
  double peek_item(int offset) override {
    if (offset < 0 || s_.rd + static_cast<std::size_t>(offset) >= s_.wr) {
      buffer_peek_error(offset, s_.wr - s_.rd);
    }
    return s_.buf[s_.rd + static_cast<std::size_t>(offset)];
  }
  double pop_item() override {
    if (s_.rd >= s_.wr) throw std::runtime_error("pop from empty channel");
    return s_.buf[s_.rd++];
  }
  void pop_many(int n) override {
    if (n <= 0) return;
    if (s_.rd + static_cast<std::size_t>(n) > s_.wr) {
      throw std::runtime_error("pop from empty channel");
    }
    s_.rd += static_cast<std::size_t>(n);
  }

 private:
  EdgeState& s_;
};

class TypedFusedExec::BufOut final : public ir::OutTape {
 public:
  explicit BufOut(EdgeState& s) : s_(s) {}
  void push_item(double v) override {
    if (s_.wr >= s_.buf.size()) {
      throw std::logic_error("fused trace buffer overflow");
    }
    s_.buf[s_.wr++] = v;
  }

 private:
  EdgeState& s_;
};

TypedFusedExec::TypedFusedExec(
    TypedFusedProgramP prog, std::vector<FilterState>& states,
    const std::vector<std::unique_ptr<Channel>>& chans,
    const std::vector<std::unique_ptr<ir::NativeState>>& nstates)
    : prog_(std::move(prog)) {
  const FusedProgram& base = *prog_->base;
  // Registers start as the tagged engine's do: Value() == int 0 in both
  // planes.  Every actor's ResetRegs re-templates its slice before any read.
  dregs_.assign(base.num_regs, 0.0);
  iregs_.assign(base.num_regs, 0);
  scalar_vals_.resize(base.scalar_names.size());
  array_vals_.resize(base.array_names.size());
  dscalars_.assign(base.scalar_names.size(), 0.0);
  iscalars_.assign(base.scalar_names.size(), 0);
  darrays_.resize(base.array_names.size());
  iarrays_.resize(base.array_names.size());
  for (std::size_t i = 0; i < base.actors.size(); ++i) {
    const FusedActorMeta& m = base.actors[i];
    FilterState& st = states[i];
    for (std::uint32_t k = 0; k < m.num_scalars; ++k) {
      const std::string& name = base.scalar_names[m.scalar_base + k];
      auto it = st.scalars.find(name);
      if (it == st.scalars.end()) {
        throw std::logic_error("fused bind: state has no scalar '" + name + "'");
      }
      scalar_vals_[m.scalar_base + k] = &it->second;
    }
    for (std::uint32_t k = 0; k < m.num_arrays; ++k) {
      const std::string& name = base.array_names[m.array_base + k];
      auto it = st.arrays.find(name);
      if (it == st.arrays.end()) {
        throw std::logic_error("fused bind: state has no array '" + name + "'");
      }
      array_vals_[m.array_base + k] = &it->second;
    }
  }
  chans_.reserve(chans.size());
  for (const auto& c : chans) chans_.push_back(c.get());
  nstates_.reserve(nstates.size());
  for (const auto& s : nstates) nstates_.push_back(s.get());
  ebuf_.resize(base.edges.size());
  for (std::size_t e = 0; e < base.edges.size(); ++e) {
    const FusedEdgeMeta& m = base.edges[e];
    if (m.internal) {
      ebuf_[e].buf.resize(static_cast<std::size_t>(m.carry + m.traffic));
    }
  }
}

bool TypedFusedExec::sync_state_in() {
  const TypedCode& c = prog_->code;
  for (std::size_t s = 0; s < scalar_vals_.size(); ++s) {
    const ir::Value& v = *scalar_vals_[s];
    if (value_tag(v) != c.scalar_class[s]) return false;
    if (c.scalar_class[s] == Tag::Double) {
      dscalars_[s] = v.as_double();
    } else {
      iscalars_[s] = v.as_int();
    }
  }
  for (std::size_t a = 0; a < array_vals_.size(); ++a) {
    const std::vector<ir::Value>& arr = *array_vals_[a];
    if (c.array_class[a] == Tag::Double) {
      darrays_[a].resize(arr.size());
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (arr[i].is_int()) return false;
        darrays_[a][i] = arr[i].as_double();
      }
    } else {
      iarrays_[a].resize(arr.size());
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (!arr[i].is_int()) return false;
        iarrays_[a][i] = arr[i].as_int();
      }
    }
  }
  return true;
}

void TypedFusedExec::sync_state_out() {
  const TypedCode& c = prog_->code;
  for (std::size_t s = 0; s < scalar_vals_.size(); ++s) {
    *scalar_vals_[s] = c.scalar_class[s] == Tag::Double
                           ? ir::Value(dscalars_[s])
                           : ir::Value(iscalars_[s]);
  }
  for (std::size_t a = 0; a < array_vals_.size(); ++a) {
    std::vector<ir::Value>& arr = *array_vals_[a];
    if (c.array_class[a] == Tag::Double) {
      for (std::size_t i = 0; i < arr.size(); ++i) {
        arr[i] = ir::Value(darrays_[a][i]);
      }
    } else {
      for (std::size_t i = 0; i < arr.size(); ++i) {
        arr[i] = ir::Value(iarrays_[a][i]);
      }
    }
  }
}

bool TypedFusedExec::activate() {
  if (active_) return true;
  const FusedProgram& base = *prog_->base;
  for (std::size_t e = 0; e < base.edges.size(); ++e) {
    const FusedEdgeMeta& m = base.edges[e];
    if (m.internal &&
        chans_[e]->size() != static_cast<std::size_t>(m.carry)) {
      return false;  // graph is mid-iteration (manual fire); run per-actor
    }
  }
  // A state tag drifting from its inferred class (e.g. a handler retagged a
  // scalar since specialization) refuses cleanly; the caller keeps the
  // tagged fused trace.  Nothing is mutated on this path.
  if (!sync_state_in()) return false;
  for (std::size_t e = 0; e < base.edges.size(); ++e) {
    const FusedEdgeMeta& m = base.edges[e];
    if (!m.internal) continue;
    EdgeState& s = ebuf_[e];
    chans_[e]->drain_items(s.buf.data());
    s.rd = 0;
    s.wr = static_cast<std::size_t>(m.carry);
  }
  active_ = true;
  return true;
}

void TypedFusedExec::deactivate() {
  if (!active_) return;
  const FusedProgram& base = *prog_->base;
  for (std::size_t e = 0; e < base.edges.size(); ++e) {
    const FusedEdgeMeta& m = base.edges[e];
    if (!m.internal) continue;
    EdgeState& s = ebuf_[e];
    chans_[e]->restore_items(s.buf.data(), static_cast<std::size_t>(m.carry));
    s.rd = s.wr = 0;
  }
  sync_state_out();
  active_ = false;
}

void TypedFusedExec::run_iteration(OpCounts* actor_counts) {
  if (!active_) {
    throw std::logic_error("TypedFusedExec::run_iteration before activate()");
  }
  if (actor_counts != nullptr) {
    run<true>(actor_counts);
  } else {
    run<false>(nullptr);
  }
  finish_iteration();
}

void TypedFusedExec::finish_iteration() {
  const FusedProgram& base = *prog_->base;
  for (std::size_t e = 0; e < base.edges.size(); ++e) {
    const FusedEdgeMeta& m = base.edges[e];
    if (!m.internal) continue;
    EdgeState& s = ebuf_[e];
    const auto carry = static_cast<std::size_t>(m.carry);
    const auto traffic = static_cast<std::size_t>(m.traffic);
    if (s.rd != traffic || s.wr != carry + traffic) {
      throw std::logic_error("fused trace left channel " + std::to_string(e) +
                             " at an unexpected level");
    }
    if (traffic > 0 && carry > 0) {
      std::memmove(s.buf.data(), s.buf.data() + traffic,
                   carry * sizeof(double));
    }
    s.rd = 0;
    s.wr = carry;
    chans_[e]->advance_counters(static_cast<std::int64_t>(traffic),
                                static_cast<std::int64_t>(traffic));
  }
}

template <bool kCount>
void TypedFusedExec::run(OpCounts* actor_counts) {
  const FusedProgram& base = *prog_->base;
  double* const dr = dregs_.data();
  std::int64_t* const ir_ = iregs_.data();
  const TyInstr* const code = prog_->code.code.data();
  EdgeState* const ebuf = ebuf_.data();
  const bool debug = debug_channel_checks();
  OpCounts* cur = nullptr;
  const FusedActorMeta* meta = nullptr;
  std::int64_t window = 0;
  std::int64_t pops = 0;
  std::int32_t pc = 0;

  // ByResult was resolved at lowering, so every tally is a single add.
  const auto tally = [&](CountTag tag) {
    if constexpr (kCount) {
      switch (tag) {
        case CountTag::None: break;
        case CountTag::IntOp: ++cur->int_ops; break;
        case CountTag::Flop: ++cur->flops; break;
        case CountTag::Div: ++cur->divs; break;
        case CountTag::Trans: ++cur->trans; break;
        case CountTag::Mem: ++cur->mem; break;
        case CountTag::Channel: ++cur->channel; break;
        case CountTag::ByResult: break;  // never emitted by typed_lower
      }
    } else {
      (void)tag;
    }
  };

  const auto tpop = [&](std::int32_t e) {
    EdgeState& s = ebuf[e];
    if (s.rd >= s.wr) throw std::runtime_error("pop from empty channel");
    return s.buf[s.rd++];
  };
  const auto tpush = [&](std::int32_t e, double v) {
    EdgeState& s = ebuf[e];
    if (s.wr >= s.buf.size()) {
      throw std::logic_error("fused trace buffer overflow");
    }
    s.buf[s.wr++] = v;
  };

  for (;;) {
    const TyInstr& I = code[pc];
    const bool ad = (I.mode & kModeAD) != 0;
    const bool bd = (I.mode & kModeBD) != 0;
    const bool dd = (I.mode & kModeDD) != 0;
    switch (I.op) {
      case FOp::Move:
        if (dd) {
          dr[I.dst] = dr[I.a];
        } else {
          ir_[I.dst] = ir_[I.a];
        }
        ++pc;
        break;
      case FOp::LoadScalar:
        if constexpr (kCount) ++cur->mem;
        if (dd) {
          dr[I.dst] = dscalars_[I.a];
        } else {
          ir_[I.dst] = iscalars_[I.a];
        }
        ++pc;
        break;
      case FOp::StoreScalar:
        if constexpr (kCount) ++cur->mem;
        if (dd) {
          dscalars_[I.a] = dr[I.dst];
        } else {
          iscalars_[I.a] = ir_[I.dst];
        }
        ++pc;
        break;
      case FOp::LoadElem: {
        const std::int64_t idx = typed_geti(dr, ir_, I.b, bd);
        if (dd) {
          const auto& arr = darrays_[I.a];
          if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
            elem_bounds_error("array index out of bounds",
                              base.array_names[I.a], idx);
          }
          if constexpr (kCount) ++cur->mem;
          dr[I.dst] = arr[static_cast<std::size_t>(idx)];
        } else {
          const auto& arr = iarrays_[I.a];
          if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
            elem_bounds_error("array index out of bounds",
                              base.array_names[I.a], idx);
          }
          if constexpr (kCount) ++cur->mem;
          ir_[I.dst] = arr[static_cast<std::size_t>(idx)];
        }
        ++pc;
        break;
      }
      case FOp::StoreElem: {
        const std::int64_t idx = typed_geti(dr, ir_, I.b, bd);
        if (dd) {
          auto& arr = darrays_[I.a];
          if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
            elem_bounds_error("array store out of bounds",
                              base.array_names[I.a], idx);
          }
          if constexpr (kCount) ++cur->mem;
          arr[static_cast<std::size_t>(idx)] = dr[I.dst];
        } else {
          auto& arr = iarrays_[I.a];
          if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
            elem_bounds_error("array store out of bounds",
                              base.array_names[I.a], idx);
          }
          if constexpr (kCount) ++cur->mem;
          arr[static_cast<std::size_t>(idx)] = ir_[I.dst];
        }
        ++pc;
        break;
      }
      case FOp::Bin:
        tally(I.count);
        typed_bin(static_cast<BinOp>(I.sub), dr, ir_, I.dst, I.a, I.b, I.mode);
        ++pc;
        break;
      case FOp::Un:
        tally(I.count);
        typed_un(static_cast<UnOp>(I.sub), dr, ir_, I.dst, I.a, I.mode);
        ++pc;
        break;
      case FOp::Truthy:
        ir_[I.dst] = typed_truthy(dr, ir_, I.a, ad) ? 1 : 0;
        ++pc;
        break;
      case FOp::Jmp:
        pc = I.jump;
        break;
      case FOp::JmpIfFalse:
        pc = typed_truthy(dr, ir_, I.a, ad) ? pc + 1 : I.jump;
        break;
      case FOp::JmpIfTrue:
        pc = typed_truthy(dr, ir_, I.a, ad) ? I.jump : pc + 1;
        break;
      case FOp::JmpIfGe:
        pc = typed_geti(dr, ir_, I.a, ad) >= typed_geti(dr, ir_, I.b, bd)
                 ? I.jump
                 : pc + 1;
        break;
      case FOp::CheckStep:
        if (typed_geti(dr, ir_, I.a, ad) <= 0) {
          throw std::runtime_error("for loop step must be positive");
        }
        ++pc;
        break;
      case FOp::ForInc:
        ir_[I.dst] =
            typed_geti(dr, ir_, I.dst, dd) + typed_geti(dr, ir_, I.a, ad);
        ++pc;
        break;
      case FOp::Tally:
        if constexpr (kCount) {
          switch (I.count) {
            case CountTag::IntOp: cur->int_ops += I.sub; break;
            case CountTag::Channel: cur->channel += I.sub; break;
            case CountTag::Flop: cur->flops += I.sub; break;
            case CountTag::Div: cur->divs += I.sub; break;
            case CountTag::Trans: cur->trans += I.sub; break;
            case CountTag::Mem: cur->mem += I.sub; break;
            case CountTag::None: case CountTag::ByResult: break;
          }
        }
        ++pc;
        break;
      case FOp::RPeek: {
        const std::int64_t off = typed_geti(dr, ir_, I.a, ad);
        if (debug && (off < 0 || pops + off >= window)) {
          peek_bounds_error(meta->name, off, pops, window);
        }
        if constexpr (kCount) ++cur->channel;
        dr[I.dst] = chans_[I.edge]->peek_item(static_cast<int>(off));
        ++pc;
        break;
      }
      case FOp::RPop:
        if constexpr (kCount) ++cur->channel;
        ++pops;
        dr[I.dst] = chans_[I.edge]->pop_item();
        ++pc;
        break;
      case FOp::RPopN: {
        const std::int64_t n = typed_geti(dr, ir_, I.a, ad);
        if (n > 0) {
          if constexpr (kCount) cur->channel += n;
          pops += n;
          chans_[I.edge]->pop_many(static_cast<int>(n));
        }
        ++pc;
        break;
      }
      case FOp::RPush:
        if constexpr (kCount) ++cur->channel;
        chans_[I.edge]->push_item(typed_getd(dr, ir_, I.dst, dd));
        ++pc;
        break;
      case FOp::TPeek: {
        const std::int64_t off = typed_geti(dr, ir_, I.a, ad);
        if (debug && (off < 0 || pops + off >= window)) {
          peek_bounds_error(meta->name, off, pops, window);
        }
        EdgeState& s = ebuf[I.edge];
        if (off < 0 || s.rd + static_cast<std::size_t>(off) >= s.wr) {
          buffer_peek_error(off, s.wr - s.rd);
        }
        if constexpr (kCount) ++cur->channel;
        dr[I.dst] = s.buf[s.rd + static_cast<std::size_t>(off)];
        ++pc;
        break;
      }
      case FOp::TPop:
        if constexpr (kCount) ++cur->channel;
        ++pops;
        dr[I.dst] = tpop(I.edge);
        ++pc;
        break;
      case FOp::TPopN: {
        const std::int64_t n = typed_geti(dr, ir_, I.a, ad);
        if (n > 0) {
          EdgeState& s = ebuf[I.edge];
          if (s.rd + static_cast<std::size_t>(n) > s.wr) {
            throw std::runtime_error("pop from empty channel");
          }
          if constexpr (kCount) cur->channel += n;
          pops += n;
          s.rd += static_cast<std::size_t>(n);
        }
        ++pc;
        break;
      }
      case FOp::TPush:
        if constexpr (kCount) ++cur->channel;
        tpush(I.edge, typed_getd(dr, ir_, I.dst, dd));
        ++pc;
        break;
      case FOp::SetActor:
        meta = &base.actors[I.a];
        window = meta->peek_window;
        if constexpr (kCount) cur = &actor_counts[I.a];
        ++pc;
        break;
      case FOp::ResetRegs: {
        const FusedActorMeta& m = base.actors[I.a];
        // Re-template both plane slices (typed_lower split m.reg_init across
        // them; the off-plane cells are zero, which no read can observe).
        const std::size_t nr = m.reg_init.size();
        std::copy_n(prog_->code.dreg_init.data() + m.reg_base, nr,
                    dr + m.reg_base);
        std::copy_n(prog_->code.ireg_init.data() + m.reg_base, nr,
                    ir_ + m.reg_base);
        pops = 0;
        ++pc;
        break;
      }
      case FOp::MacLoop: {
        const MacLoopArgs& M = base.macs[I.a];
        std::int64_t i = ir_[M.ri];
        const std::int64_t hi = ir_[M.rhi];
        const std::int64_t st = ir_[M.rstep];
        if (i < hi) {
          double acc = dr[M.acc];
          const std::vector<double>* arr =
              M.has_array ? &darrays_[M.arr] : nullptr;
          EdgeState* s = M.real ? nullptr : &ebuf[M.edge];
          Channel* const ch = M.real ? chans_[M.edge] : nullptr;
          // Hoisted precheck: when no per-element check can fire across the
          // whole range, run the raw kernel and count in bulk.  `last` is the
          // largest index the loop touches (st > 0 was established by the
          // CheckStep the superinstruction absorbed).
          const std::int64_t last = i + ((hi - 1 - i) / st) * st;
          bool fast = i >= 0 && st > 0;
          if (fast && debug && pops + last >= window) fast = false;
          if (fast && s != nullptr &&
              s->rd + static_cast<std::size_t>(last) >= s->wr) {
            fast = false;
          }
          if (fast && ch != nullptr &&
              static_cast<std::size_t>(last) >= ch->size()) {
            fast = false;
          }
          if (fast && arr != nullptr &&
              static_cast<std::size_t>(last) >= arr->size()) {
            fast = false;
          }
          if (fast && s != nullptr) {
            const double* const src = s->buf.data() + s->rd;
            if (arr != nullptr) {
              const double* const coef = arr->data();
              for (; i < hi; i += st) acc += src[i] * coef[i];
            } else {
              for (; i < hi; i += st) acc += src[i];
            }
            if constexpr (kCount) {
              const std::int64_t trips = (hi - ir_[M.ri] + st - 1) / st;
              cur->int_ops += 2 * trips;
              cur->channel += trips;
              if (arr != nullptr) {
                cur->mem += trips;
                cur->flops += 2 * trips;  // mul + add per term
              } else {
                cur->flops += trips;  // add per term
              }
            }
          } else if (fast) {
            // Real-channel mac: peek through the ring (still raw doubles).
            if (arr != nullptr) {
              const double* const coef = arr->data();
              for (; i < hi; i += st) {
                acc += ch->peek_item(static_cast<int>(i)) * coef[i];
              }
            } else {
              for (; i < hi; i += st) acc += ch->peek_item(static_cast<int>(i));
            }
            if constexpr (kCount) {
              const std::int64_t trips = (hi - ir_[M.ri] + st - 1) / st;
              cur->int_ops += 2 * trips;
              cur->channel += trips;
              if (arr != nullptr) {
                cur->mem += trips;
                cur->flops += 2 * trips;
              } else {
                cur->flops += trips;
              }
            }
          } else {
            // Checked path: per-element checks and counts in exactly the
            // tagged engine's order, so an error fires at the same element
            // with the same partial counts.
            for (; i < hi; i += st) {
              if constexpr (kCount) cur->int_ops += 2;
              if (debug && (i < 0 || pops + i >= window)) {
                peek_bounds_error(meta->name, i, pops, window);
              }
              double pd;
              if (s != nullptr) {
                if (i < 0 || s->rd + static_cast<std::size_t>(i) >= s->wr) {
                  buffer_peek_error(i, s->wr - s->rd);
                }
                pd = s->buf[s->rd + static_cast<std::size_t>(i)];
              } else {
                pd = ch->peek_item(static_cast<int>(i));
              }
              if constexpr (kCount) ++cur->channel;
              double term = pd;
              if (arr != nullptr) {
                if (i < 0 || static_cast<std::size_t>(i) >= arr->size()) {
                  elem_bounds_error("array index out of bounds",
                                    base.array_names[M.arr], i);
                }
                if constexpr (kCount) ++cur->mem;
                term = pd * (*arr)[static_cast<std::size_t>(i)];
                if constexpr (kCount) ++cur->flops;
              }
              acc += term;
              if constexpr (kCount) ++cur->flops;
            }
          }
          dr[M.acc] = acc;
          // The loop-variable local holds its final iteration's value.
          ir_[M.slot] = i - st;
        }
        ir_[M.ri] = i;
        ++pc;
        break;
      }
      case FOp::PopComputePush: {
        const PcpArgs& P = base.pcps[I.a];
        const TypedPcp& tp = prog_->code.pcps[I.a];
        double vd;
        if (P.in_real) {
          vd = chans_[P.in_edge]->pop_item();
        } else {
          vd = tpop(P.in_edge);
        }
        if constexpr (kCount) ++cur->channel;
        ++pops;
        dr[P.rpop] = vd;
        double outd = vd;
        switch (P.kind) {
          case PcpArgs::Kind::Plain:
            outd = vd;
            break;
          case PcpArgs::Kind::Bin:
            tally(tp.tag);
            typed_bin(static_cast<BinOp>(P.sub), dr, ir_, P.rres, P.a, P.b,
                      tp.mode);
            outd = tp.res_double ? dr[P.rres]
                                 : static_cast<double>(ir_[P.rres]);
            break;
          case PcpArgs::Kind::Un:
            tally(tp.tag);
            typed_un(static_cast<UnOp>(P.sub), dr, ir_, P.rres, P.a, tp.mode);
            outd = tp.res_double ? dr[P.rres]
                                 : static_cast<double>(ir_[P.rres]);
            break;
        }
        if constexpr (kCount) ++cur->channel;
        if (P.out_real) {
          chans_[P.out_edge]->push_item(outd);
        } else {
          tpush(P.out_edge, outd);
        }
        ++pc;
        break;
      }
      case FOp::CopyRun: {
        const CopyRunArgs& C = base.copies[I.a];
        if constexpr (kCount) {
          cur->channel += C.n * (1 + static_cast<std::int64_t>(C.dst.size()));
        }
        if (C.n > 0) {
          double last = 0.0;
          if (!C.src_real && C.dst.size() == 1 && C.dst_real[0] == 0) {
            EdgeState& si = ebuf[C.src];
            EdgeState& so = ebuf[C.dst[0]];
            const auto n = static_cast<std::size_t>(C.n);
            if (si.rd + n > si.wr) {
              throw std::runtime_error("pop from empty channel");
            }
            if (so.wr + n > so.buf.size()) {
              throw std::logic_error("fused trace buffer overflow");
            }
            std::memcpy(so.buf.data() + so.wr, si.buf.data() + si.rd,
                        n * sizeof(double));
            si.rd += n;
            so.wr += n;
            last = so.buf[so.wr - 1];
          } else {
            for (std::int64_t k = 0; k < C.n; ++k) {
              const double v =
                  C.src_real ? chans_[C.src]->pop_item() : tpop(C.src);
              for (std::size_t d = 0; d < C.dst.size(); ++d) {
                if (C.dst_real[d] != 0) {
                  chans_[C.dst[d]]->push_item(v);
                } else {
                  tpush(C.dst[d], v);
                }
              }
              last = v;
            }
          }
          dr[C.reg] = last;
        }
        ++pc;
        break;
      }
      case FOp::NativeFire: {
        const NativeFireArgs& N = base.nats[I.a];
        const FlatActor& a =
            base.graph->actors[static_cast<std::size_t>(N.actor)];
        EdgeState dummy;
        BufIn bin(N.in_edge >= 0 && !N.in_real ? ebuf[N.in_edge] : dummy);
        BufOut bout(N.out_edge >= 0 && !N.out_real ? ebuf[N.out_edge] : dummy);
        ir::InTape* in = &g_null_in;
        ir::OutTape* out = &g_null_out;
        if (N.in_edge >= 0) {
          in = N.in_real ? static_cast<ir::InTape*>(chans_[N.in_edge]) : &bin;
        }
        if (N.out_edge >= 0) {
          out = N.out_real ? static_cast<ir::OutTape*>(chans_[N.out_edge])
                           : &bout;
        }
        a.node->native.work(nstates_[static_cast<std::size_t>(N.actor)], *in,
                            *out);
        if constexpr (kCount) {
          cur->flops += N.flops;
          cur->int_ops += N.int_ops;
          cur->channel += N.channel;
        }
        ++pc;
        break;
      }
      case FOp::Halt:
        return;
      default:
        throw std::logic_error("typed fused dispatch: unexpected opcode");
    }
  }
}

}  // namespace sit::runtime
