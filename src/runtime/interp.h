#pragma once
// Work-function interpreter.
//
// Executes the C-like AST of a filter against its input/output tapes with
// Java-like evaluation rules (the subset StreamIt 1.0 admits): int/int
// arithmetic stays integral, any float operand promotes, assignments to
// undeclared names create invocation-local temporaries, state variables
// persist across invocations.  The interpreter optionally tallies abstract
// operations (OpCounts) -- the same numbers serve execution, the static work
// estimator, and the machine simulator.

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/ast.h"
#include "ir/filter.h"
#include "ir/value.h"
#include "runtime/opcounts.h"

namespace sit::runtime {

struct FilterState {
  std::unordered_map<std::string, ir::Value> scalars;
  std::unordered_map<std::string, std::vector<ir::Value>> arrays;
};

// Teleport message emitted by a Send statement during work execution.
struct SentMessage {
  std::string portal;
  std::string method;
  std::vector<ir::Value> args;
  int lat_min{0};
  int lat_max{0};
};

using MessageSink = std::function<void(const SentMessage&)>;

// Debug-mode channel checking.  When enabled, every peek during work
// execution asserts 0 <= pops_so_far + offset < max(peek, pop) against the
// filter's declared rates and throws std::runtime_error on violation --
// the dynamic counterpart of the static bounds pass (analysis/intervals).
// Off by default: the check costs a branch per channel op.
void set_debug_channel_checks(bool enabled);
bool debug_channel_checks();

class Interp {
 public:
  // Declare state variables and run the filter's init function.
  static FilterState init_state(const ir::FilterSpec& spec);

  // The two halves of init_state, exposed separately so the bytecode engine
  // can declare state here and run a *compiled* init function instead.
  static FilterState declare_state(const ir::FilterSpec& spec);
  static void run_init(const ir::FilterSpec& spec, FilterState& state);

  // One invocation of work.  `counts` may be null.
  static void run_work(const ir::FilterSpec& spec, FilterState& state,
                       ir::InTape& in, ir::OutTape& out, OpCounts* counts,
                       const MessageSink* sink = nullptr);

  // Invoke a message handler with bound arguments.
  static void run_handler(const ir::FilterSpec& spec, FilterState& state,
                          const std::string& method,
                          const std::vector<ir::Value>& args);
};

}  // namespace sit::runtime
