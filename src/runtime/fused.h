#pragma once
// Whole-program fused steady-state trace.
//
// The per-actor VM (vm.h) still pays, on every steady-state iteration, one
// work-function dispatch per firing and a ring-buffer round trip per item.
// This engine removes both: build_fused() inlines every actor's compiled
// work template, repeated its full repetition count, into ONE flat bytecode
// trace in single-appearance schedule order, and lowers every fully-internal
// channel to a flat array ("trace buffer") indexed by cursors whose motion
// is statically known.  Ring channels survive only at the program boundary
// (external input/output edges), where the feeder/drainer needs them.
//
// Layout of one iteration's trace, per actor in schedule order:
//
//   SetActor a            switch OpCounts attribution + peek window
//   reps[a] x {
//     ResetRegs a         reload the actor's register template (exactly the
//                         per-invocation copy the VM does)
//     <work template>     the filter's compiled bytecode, registers rebased
//                         into one flat register file, Peek/Pop/Push lowered
//                         to TPeek/TPop/TPush (trace buffer) or RPeek/RPop/
//                         RPush (boundary ring)
//   }
//
// Splitters/joiners are synthesized as explicit pop/push templates and
// native filters as NativeFire calls through tape adapters, so any graph the
// per-actor executor runs (modulo the admissibility rules in
// analysis/fuse.h) can fuse.
//
// A peephole pass over each template then collapses the hot patterns into
// superinstructions -- single opcodes that execute a whole loop or firing
// with identical semantics and identical OpCounts:
//
//   mac-loop       for(i) acc += peek(i) * coef[i]   (FIR taps; the dominant
//                  pattern of every linear app)
//   sum-loop       for(i) acc += peek(i)             (adders/combiners)
//   pop-push       push(pop())                       (pass-through)
//   pop-bin-push   push(pop() <op> x)                (gain, scalers)
//   pop-un-push    push(<op>(pop()))                 (rectifiers)
//   copy-run       n x { pop(src); push(dst) }       (round-robin routing)
//   dup-run        n x { pop(src); push(all dsts) }  (duplicate splitters)
//
// Bit-equality contract: for any admissible program, running the trace
// produces outputs, per-actor FilterState, per-actor OpCounts, and per-edge
// cumulative push/pop counters identical to the per-actor VM execution.
// Counting preservation is per-instruction (every lowered/fused op carries
// the same CountTag arithmetic as the VM dispatch loop); channel-counter
// preservation is by bulk advance (each lowered edge's n(t)/p(t) advance by
// `traffic` once per iteration, which equals the sum of the per-item
// increments the VM would have made).  Only Channel high-water marks differ
// (a lowered channel never observes intermediate occupancy).
//
// tests/test_pipeline_diff.cc holds the contract across all apps x all
// optimization levels; tests/test_fused.cc pins superinstruction selection
// and every refusal reason.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/filter.h"
#include "ir/value.h"
#include "runtime/channel.h"
#include "runtime/flatgraph.h"
#include "runtime/interp.h"
#include "runtime/opcounts.h"
#include "runtime/vm.h"

namespace sit::runtime {

enum class FOp : std::uint8_t {
  // Scalar core -- semantics identical to the VmOp of the same name, with
  // register / state-slot operands rebased into the flat program-wide files.
  Move, LoadScalar, StoreScalar, LoadElem, StoreElem,
  Bin, Un, Truthy, Jmp, JmpIfFalse, JmpIfTrue, JmpIfGe, CheckStep, ForInc,
  Tally,  // counts->(field selected by `count`) += sub
  // Boundary channel ops: the edge keeps its ring Channel (`edge` field).
  RPeek, RPop, RPopN, RPush,
  // Lowered channel ops: the edge is a flat trace buffer (`edge` field).
  TPeek, TPop, TPopN, TPush,
  // Firing structure.
  SetActor,    // a = actor id: OpCounts attribution + peek window
  ResetRegs,   // a = actor id: reload the actor's register template
  // Superinstructions (`a` indexes the matching args table).
  MacLoop,         // mac-loop / sum-loop
  PopComputePush,  // pop-push / pop-bin-push / pop-un-push
  CopyRun,         // copy-run / dup-run
  NativeFire,      // one firing of a native filter through tape adapters
  Halt,
};

struct FInstr {
  FOp op{FOp::Halt};
  std::uint8_t sub{0};  // BinOp/UnOp ordinal, or Tally amount
  CountTag count{CountTag::None};
  std::uint16_t dst{0}, a{0}, b{0};
  std::int32_t jump{-1};
  std::int32_t edge{-1};  // channel ops: flat-graph edge id
};

// for (i = r[ri]; i < r[rhi]; i += r[rstep])
//   r[acc] += peek(i) [ * coef[i] ]
// with per-iteration counts identical to the 9-instruction (7 without the
// coefficient array) VM loop body it replaces.
struct MacLoopArgs {
  std::uint16_t ri{0}, rhi{0}, rstep{0};  // loop bookkeeping registers
  std::uint16_t slot{0};                  // the loop-variable local
  std::uint16_t acc{0};                   // accumulator register
  std::uint16_t p{0}, q{0}, m{0};         // constituent temporaries
  std::uint16_t arr{0};                   // flat array slot (has_array)
  bool has_array{false};
  std::int32_t edge{-1};
  bool real{false};  // peek the boundary ring instead of a trace buffer
};

struct PcpArgs {
  enum class Kind : std::uint8_t { Plain, Bin, Un };
  Kind kind{Kind::Plain};
  std::uint8_t sub{0};             // BinOp/UnOp ordinal (Bin/Un kinds)
  CountTag tag{CountTag::None};    // the compute op's CountTag
  std::int32_t in_edge{-1}, out_edge{-1};
  bool in_real{false}, out_real{false};
  std::uint16_t rpop{0};           // register the popped item lands in
  std::uint16_t a{0}, b{0};        // Bin operand registers
  std::uint16_t rres{0};           // register whose value is pushed
};

struct CopyRunArgs {
  std::int32_t src{-1};
  bool src_real{false};
  std::vector<std::int32_t> dst;   // >= 1 destinations (dup-run when > 1)
  std::vector<std::uint8_t> dst_real;
  std::int64_t n{0};               // items moved
  std::uint16_t reg{0};            // scratch register (holds the last item)
};

struct NativeFireArgs {
  int actor{-1};
  std::int32_t in_edge{-1}, out_edge{-1};
  bool in_real{false}, out_real{false};
  // Static per-firing counts, exactly as the per-actor executor adds them.
  std::int64_t flops{0}, int_ops{0}, channel{0};
};

struct FusedActorMeta {
  std::string name;
  std::uint32_t reg_base{0};
  std::uint32_t scalar_base{0}, array_base{0};
  std::uint32_t num_scalars{0}, num_arrays{0};
  std::vector<ir::Value> reg_init;  // empty for splitters/joiners/natives
  std::int64_t peek_window{0};
  bool native{false};
};

struct FusedEdgeMeta {
  bool internal{false};
  std::int64_t carry{0};    // items living across iteration boundaries (L0)
  std::int64_t traffic{0};  // items crossing per iteration
};

struct FusedProgram {
  const FlatGraph* graph{nullptr};  // non-owning; must outlive the program
  std::vector<int> order;           // single-appearance firing order
  std::vector<std::int64_t> reps;
  std::vector<FInstr> code;
  std::vector<MacLoopArgs> macs;
  std::vector<PcpArgs> pcps;
  std::vector<CopyRunArgs> copies;
  std::vector<NativeFireArgs> nats;
  std::vector<FusedActorMeta> actors;
  std::vector<FusedEdgeMeta> edges;
  // Flat state-slot name tables (error messages + binding), indexed by
  // actors[i].scalar_base/array_base + slot.
  std::vector<std::string> scalar_names, array_names;
  std::size_t num_regs{0};
  int eliminated_channels{0};  // internal edges lowered to trace buffers
  // Static superinstruction selection: trace-instruction instances by stable
  // name (mac-loop, sum-loop, pop-push, pop-bin-push, pop-un-push, copy-run,
  // dup-run).  Absent name == 0.
  std::map<std::string, std::int64_t> super;

  [[nodiscard]] std::int64_t super_count(const std::string& name) const {
    const auto it = super.find(name);
    return it == super.end() ? 0 : it->second;
  }
  // Human-readable trace listing with superinstructions annotated
  // (streamc --dump-after=fuse-steady).
  [[nodiscard]] std::string disassemble() const;
};

using FusedProgramP = std::shared_ptr<const FusedProgram>;

struct FusedBuildOptions {
  bool superinstructions{true};  // peephole selection (off: plain flat trace)
};

// Build the fused trace for one steady-state iteration.  `order`/`reps` are
// the single-appearance schedule; `carry`/`traffic` are the per-edge sizing
// from analysis::fuse_plan (carry < 0 marks a boundary edge).  Returns
// nullptr with `reason` filled when some construct cannot be traced (the
// caller falls back to the per-actor VM).
FusedProgramP build_fused(const FlatGraph& g, const std::vector<int>& order,
                          const std::vector<std::int64_t>& reps,
                          const std::vector<std::int64_t>& carry,
                          const std::vector<std::int64_t>& traffic,
                          std::string* reason = nullptr,
                          const FusedBuildOptions& opts = {});

// A fused program bound to one executor's storage (FilterStates, boundary
// Channels, NativeStates).  Usage per run_steady call:
//
//   if (fx.activate()) {           // lower internal channels to buffers
//     for each iteration: fx.run_iteration(counts);
//     fx.deactivate();             // restore carried items to the channels
//   }
//
// activate() refuses (returns false) when some internal channel does not
// hold exactly its steady-state carry -- e.g. after manual fire() calls
// left the graph mid-iteration -- in which case the caller should run the
// iteration per-actor instead.  run_iteration advances every lowered
// channel's cumulative counters by its traffic, executes one whole steady
// state, and compacts each buffer's carried items back to the front.
class FusedExec {
 public:
  FusedExec(FusedProgramP prog, std::vector<FilterState>& states,
            const std::vector<std::unique_ptr<Channel>>& chans,
            const std::vector<std::unique_ptr<ir::NativeState>>& nstates);

  bool activate();
  void deactivate();
  // `actor_counts` may be null (counting compiled out of the dispatch loop).
  void run_iteration(OpCounts* actor_counts);
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const FusedProgram& program() const { return *prog_; }

 private:
  template <bool kCount>
  void run(OpCounts* actor_counts);
  void finish_iteration();

  struct EdgeState {
    std::vector<double> buf;  // sized carry + traffic
    std::size_t rd{0}, wr{0};
  };
  class BufIn;
  class BufOut;

  FusedProgramP prog_;
  std::vector<ir::Value> regs_;
  std::vector<ir::Value*> scalars_;
  std::vector<std::vector<ir::Value>*> arrays_;
  std::vector<Channel*> chans_;
  std::vector<ir::NativeState*> nstates_;
  std::vector<EdgeState> ebuf_;
  bool active_{false};
};

}  // namespace sit::runtime
