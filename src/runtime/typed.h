#pragma once
// Typed dataflow: static tag inference + dual-plane (unboxed) execution.
//
// Every register, state slot, and trace-buffer cell in the tagged engines is
// an ir::Value (variant<int64, double>), so every opcode pays variant
// dispatch even though most apps never hold ints in hot registers.  This
// module removes that cost where a static analysis can prove it safe:
//
//   * A forward, flow-sensitive dataflow over the (VM or fused) bytecode
//     assigns every register AT EVERY PROGRAM POINT a lattice tag
//         Int | Double | Mixed        (Int join Double = Mixed)
//     seeded from the register template, with transfer functions mirroring
//     the Java-like promotion rules in eval_ops.h (int op int stays Int, any
//     Double operand promotes, comparisons/logic produce Int, channel
//     pops/peeks produce Double, ToInt/ToFloat force a plane).  Filter state
//     scalars/arrays get one global class each: the join of the bound
//     state's current tag and every store site's tag.  Flow-sensitivity
//     matters because the compiler reuses expression temporaries across
//     statements with different tags -- a per-register summary would refuse
//     nearly everything.
//
//   * When no *read* ever observes Mixed, the program is lowered 1:1 to a
//     TyInstr stream executed against two raw register files -- a double
//     plane and an int64 plane -- with a per-instruction mode byte naming
//     each operand's plane (eval_ops.h typed_bin/typed_un).  Two planes
//     rather than one double file because int64 arithmetic (the LCG sources'
//     wrap-around, bit ops) exceeds a double's 53-bit mantissa.
//
//   * When some read does observe Mixed, lowering refuses with a stable
//     reason string -- "mixed-register" / "mixed-state:<name>" (prefixed
//     with the actor for fused traces) -- and the caller keeps the tagged
//     path.  Bit-equality between SIT_TYPED=0 and =1 is the contract:
//     the typed loops reproduce the tagged kernels' promotion, truncating
//     casts, op counting, and error strings exactly.
//
// Consumers: compile.cc::typed_compile specializes one filter's work program
// (executed by TypedBound, vm.cc); fused.cc::build_typed_fused specializes a
// whole fused steady-state trace (executed by TypedFusedExec, with the
// mac-loop superinstruction lowered to a raw double* kernel); and
// analysis/typeflow.h lifts the per-actor results to a whole-graph view with
// channel content tags.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/filter.h"
#include "ir/value.h"
#include "runtime/fused.h"
#include "runtime/interp.h"
#include "runtime/opcounts.h"
#include "runtime/vm.h"

namespace sit::runtime {

// The three-point tag lattice.  Int and Double are incomparable; Mixed tops.
enum class Tag : std::uint8_t { Int = 0, Double = 1, Mixed = 2 };

inline Tag join_tag(Tag a, Tag b) { return a == b ? a : Tag::Mixed; }
inline Tag value_tag(const ir::Value& v) {
  return v.is_int() ? Tag::Int : Tag::Double;
}
const char* tag_name(Tag t);  // "int" | "double" | "mixed"

// One typed instruction: the FOp plus the operand-plane mode byte
// (eval_ops.h kModeAD/kModeBD/kModeDD).  CountTag::ByResult is resolved
// statically during lowering, so typed dispatch never tests a value tag.
struct TyInstr {
  FOp op{FOp::Halt};
  std::uint8_t sub{0};
  CountTag count{CountTag::None};
  std::uint8_t mode{0};
  std::uint16_t dst{0}, a{0}, b{0};
  std::int32_t jump{-1};
  std::int32_t edge{-1};
};

// Typed sidecar for one PopComputePush site (parallel to FusedProgram::pcps):
// operand planes for the compute op and the statically resolved result plane
// and count field.
struct TypedPcp {
  std::uint8_t mode{0};
  bool res_double{true};
  CountTag tag{CountTag::None};
};

// The result of lowering one tagged instruction stream.  `code` is 1:1 with
// the input (same indices, same jump targets); the register template is
// split across the two planes by tag.
struct TypedCode {
  std::vector<TyInstr> code;
  std::vector<double> dreg_init;        // double-plane register template
  std::vector<std::int64_t> ireg_init;  // int-plane register template
  std::vector<Tag> reg_tag;      // per register: join of every write's tag
  std::vector<Tag> scalar_class;  // per scalar slot
  std::vector<Tag> array_class;   // per array slot
  std::vector<TypedPcp> pcps;     // fused programs only
  Tag push_tag{Tag::Double};      // join of pushed value tags (Double if none)
  int typed_regs{0};              // registers proven Double everywhere
};

// Lowering input.  For a VM work program, `code` is the VmInstr stream
// re-expressed as FInstr (Peek -> RPeek with edge -1, etc.) and `fused` is
// null.  For a fused trace, `fused` supplies the superinstruction argument
// tables and per-actor register templates, and `loop` makes the analysis
// join the Halt-exit state back into the entry state (fused registers
// persist across iterations; VM registers are re-templated every firing).
struct TypedLowerInput {
  const std::vector<FInstr>* code{nullptr};
  std::size_t num_regs{0};
  std::vector<ir::Value> reg_init;  // entry register template (may be
                                    // shorter than num_regs; rest Int 0)
  std::vector<Tag> scalar_seed, array_seed;
  const std::vector<std::string>* scalar_names{nullptr};  // refusal strings
  const std::vector<std::string>* array_names{nullptr};
  const FusedProgram* fused{nullptr};
  bool loop{false};
};

// Run the inference to fixpoint and lower.  Returns false (and fills
// `refusal` with a stable reason) when some read observes Mixed or some
// state slot's class is Mixed.
bool typed_lower(const TypedLowerInput& in, TypedCode* out,
                 std::string* refusal);

// ---- VM layer ---------------------------------------------------------------

// A work function specialized onto the dual register plane.  Produced by
// typed_compile (compile.cc) from an already-compiled tagged filter; the
// tagged program stays around as the authoritative fallback (and still runs
// init, which executes once and is not worth specializing).
struct TypedFilter {
  CompiledFilterP base;
  TypedCode work;
};

using TypedFilterP = std::shared_ptr<const TypedFilter>;

// Specialize `base`'s work program against the *current* state tags (state
// must already be initialized; its tags seed the scalar/array classes).
// Returns null with a stable `reason` when inference refuses:
//   "has-handlers"      teleport handlers may retag state at any time
//   "teleport-send"     Send argument marshaling stays on the tagged path
//   "mixed-register"    some read observes an Int-or-Double register
//   "mixed-state:<name>" some state slot is stored with both tags
TypedFilterP typed_compile(const ir::FilterSpec& spec,
                           const CompiledFilterP& base,
                           const FilterState& state,
                           std::string* reason = nullptr);

// The typed twin of VmBound: same binding rules, same counting, same error
// strings, same trace batches -- but registers live in two raw planes and
// dispatch never touches a variant.  State stays in the FilterState's
// ir::Values (loads/stores go through the proven class), so the tree
// interpreter and tagged VM remain freely mixable on the same state.
class TypedBound {
 public:
  TypedBound(TypedFilterP prog, FilterState& state);

  void run_work(ir::InTape& in, ir::OutTape& out, OpCounts* counts,
                const obs::FiringTrace* trace = nullptr);

  [[nodiscard]] const TypedFilter& program() const { return *prog_; }

 private:
  template <bool kCount>
  void run_program(ir::InTape* in, ir::OutTape* out, OpCounts* counts,
                   const obs::FiringTrace* trace);

  TypedFilterP prog_;
  std::vector<ir::Value*> scalars_;
  std::vector<std::vector<ir::Value>*> arrays_;
  std::vector<double> dregs_;
  std::vector<std::int64_t> iregs_;
};

// ---- fused layer ------------------------------------------------------------

// A whole fused steady-state trace specialized onto the dual plane.  The
// tagged FusedProgram stays authoritative (disassembly, superinstruction
// stats); `code` mirrors it 1:1 and shares its argument tables by index.
struct TypedFusedProgram {
  FusedProgramP base;
  TypedCode code;
};

using TypedFusedProgramP = std::shared_ptr<const TypedFusedProgram>;

// Specialize a fused trace.  `states` is the per-flat-actor FilterState
// vector (already initialized; tags seed the state classes).  Refusals add
// the owning actor to the stable reason: "mixed-register:<actor>",
// "mixed-state:<actor>.<name>", "super-untyped:<actor>" (a mac-loop whose
// accumulator or coefficient array is not Double).
TypedFusedProgramP build_typed_fused(const FusedProgramP& base,
                                     const std::vector<FilterState>& states,
                                     std::string* refusal = nullptr);

// The typed twin of FusedExec.  Same activation protocol; additionally
// mirrors every filter state scalar/array into raw plane storage for the
// duration of an activation (written back on deactivate), which is what
// lets the mac-loop run as `for (i) acc += src[i] * coef[i]` over raw
// double spans.  activate() also re-validates that every state tag still
// matches its inferred class -- a mismatch (e.g. a teleport handler retagged
// a scalar between runs) returns false and the caller falls back to the
// tagged fused trace.
class TypedFusedExec {
 public:
  TypedFusedExec(TypedFusedProgramP prog, std::vector<FilterState>& states,
                 const std::vector<std::unique_ptr<Channel>>& chans,
                 const std::vector<std::unique_ptr<ir::NativeState>>& nstates);

  bool activate();
  void deactivate();
  void run_iteration(OpCounts* actor_counts);
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const TypedFusedProgram& program() const { return *prog_; }

 private:
  template <bool kCount>
  void run(OpCounts* actor_counts);
  void finish_iteration();
  bool sync_state_in();   // Value -> planes; false on a class/tag mismatch
  void sync_state_out();  // planes -> Value

  struct EdgeState {
    std::vector<double> buf;
    std::size_t rd{0}, wr{0};
  };
  class BufIn;
  class BufOut;

  TypedFusedProgramP prog_;
  std::vector<ir::Value*> scalar_vals_;
  std::vector<std::vector<ir::Value>*> array_vals_;
  std::vector<double> dregs_;
  std::vector<std::int64_t> iregs_;
  std::vector<double> dscalars_;
  std::vector<std::int64_t> iscalars_;
  std::vector<std::vector<double>> darrays_;
  std::vector<std::vector<std::int64_t>> iarrays_;
  std::vector<Channel*> chans_;
  std::vector<ir::NativeState*> nstates_;
  std::vector<EdgeState> ebuf_;
  bool active_{false};
};

}  // namespace sit::runtime
