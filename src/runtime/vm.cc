#include "runtime/vm.h"

#include <stdexcept>

#include "runtime/eval_ops.h"
#include "runtime/typed.h"

namespace sit::runtime {

using ir::BinOp;
using ir::UnOp;
using ir::Value;

VmBound::VmBound(CompiledFilterP prog, FilterState& state)
    : prog_(std::move(prog)) {
  scalars_.reserve(prog_->scalar_slots.size());
  for (const auto& name : prog_->scalar_slots) {
    auto it = state.scalars.find(name);
    if (it == state.scalars.end()) {
      throw std::logic_error("VM bind: state has no scalar '" + name + "'");
    }
    scalars_.push_back(&it->second);
  }
  arrays_.reserve(prog_->array_slots.size());
  for (const auto& name : prog_->array_slots) {
    auto it = state.arrays.find(name);
    if (it == state.arrays.end()) {
      throw std::logic_error("VM bind: state has no array '" + name + "'");
    }
    arrays_.push_back(&it->second);
  }
  std::size_t n = prog_->work.reg_init.size();
  if (prog_->has_init) n = std::max(n, prog_->init.reg_init.size());
  regs_.resize(n);
}

namespace {

[[noreturn]] void peek_bounds_error(const std::string& name, std::int64_t off,
                                    std::int64_t pops, std::int64_t window) {
  throw std::runtime_error(
      "peek out of bounds in '" + name + "': peek(" + std::to_string(off) +
      ") after " + std::to_string(pops) +
      " pop(s) exceeds the declared window of " + std::to_string(window));
}

[[noreturn]] void elem_bounds_error(const char* what, const std::string& name,
                                    std::int64_t idx) {
  throw std::runtime_error(std::string(what) + ": " + name + "[" +
                           std::to_string(idx) + "]");
}

}  // namespace

template <bool kCount>
void VmBound::run_program(const CompiledProgram& p, ir::InTape* in,
                          ir::OutTape* out, OpCounts* counts,
                          const MessageSink* sink,
                          const obs::FiringTrace* trace) {
  Value* const regs = regs_.data();
  std::copy(p.reg_init.begin(), p.reg_init.end(), regs);
  const VmInstr* const code = p.code.data();
  const bool debug = debug_channel_checks();
  std::int64_t pops = 0;
  std::int64_t pushes = 0;
  std::int32_t pc = 0;

  // Resolved at compile time where the type is static; ByResult tests the
  // runtime tag, mirroring the tree interpreter's count_bin/count_un.
  const auto tally = [&](CountTag tag, const Value& r) {
    if constexpr (kCount) {
      switch (tag) {
        case CountTag::None: break;
        case CountTag::IntOp: ++counts->int_ops; break;
        case CountTag::Flop: ++counts->flops; break;
        case CountTag::Div: ++counts->divs; break;
        case CountTag::Trans: ++counts->trans; break;
        case CountTag::Mem: ++counts->mem; break;
        case CountTag::Channel: ++counts->channel; break;
        case CountTag::ByResult:
          r.is_int() ? ++counts->int_ops : ++counts->flops;
          break;
      }
    } else {
      (void)tag;
      (void)r;
    }
  };

  for (;;) {
    const VmInstr& I = code[pc];
    switch (I.op) {
      case VmOp::Move:
        regs[I.dst] = regs[I.a];
        ++pc;
        break;
      case VmOp::LoadScalar:
        if constexpr (kCount) ++counts->mem;
        regs[I.dst] = *scalars_[I.a];
        ++pc;
        break;
      case VmOp::StoreScalar:
        if constexpr (kCount) ++counts->mem;
        *scalars_[I.a] = regs[I.dst];
        ++pc;
        break;
      case VmOp::LoadElem: {
        const std::int64_t idx = regs[I.b].as_int();
        const auto& arr = *arrays_[I.a];
        if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
          elem_bounds_error("array index out of bounds",
                            prog_->array_slots[I.a], idx);
        }
        if constexpr (kCount) ++counts->mem;
        regs[I.dst] = arr[static_cast<std::size_t>(idx)];
        ++pc;
        break;
      }
      case VmOp::StoreElem: {
        const std::int64_t idx = regs[I.b].as_int();
        auto& arr = *arrays_[I.a];
        if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
          elem_bounds_error("array store out of bounds",
                            prog_->array_slots[I.a], idx);
        }
        if constexpr (kCount) ++counts->mem;
        arr[static_cast<std::size_t>(idx)] = regs[I.dst];
        ++pc;
        break;
      }
      case VmOp::Peek: {
        if (!in) throw std::runtime_error("peek outside work function");
        const std::int64_t off = regs[I.a].as_int();
        if (debug) {
          if (off < 0 || pops + off >= prog_->peek_window) {
            peek_bounds_error(prog_->name, off, pops, prog_->peek_window);
          }
        }
        if constexpr (kCount) ++counts->channel;
        regs[I.dst] = Value(in->peek_item(static_cast<int>(off)));
        ++pc;
        break;
      }
      case VmOp::Pop:
        if (!in) throw std::runtime_error("pop outside work function");
        if constexpr (kCount) ++counts->channel;
        ++pops;
        regs[I.dst] = Value(in->pop_item());
        ++pc;
        break;
      case VmOp::PopN: {
        if (!in) throw std::runtime_error("pop outside work function");
        const std::int64_t n = regs[I.a].as_int();
        if (n > 0) {
          if constexpr (kCount) counts->channel += n;
          pops += n;
          in->pop_many(static_cast<int>(n));
        }
        ++pc;
        break;
      }
      case VmOp::Push:
        if (!out) throw std::runtime_error("push outside work function");
        if constexpr (kCount) ++counts->channel;
        ++pushes;
        out->push_item(regs[I.dst].as_double());
        ++pc;
        break;
      case VmOp::Bin: {
        const Value r =
            apply_bin(static_cast<BinOp>(I.sub), regs[I.a], regs[I.b]);
        tally(I.count, r);
        regs[I.dst] = r;
        ++pc;
        break;
      }
      case VmOp::Un: {
        // Neg/Abs count by *operand* type in the tree interpreter; operand
        // and result tags coincide for both, so ByResult on the input is
        // equivalent.
        tally(I.count, regs[I.a]);
        regs[I.dst] = apply_un(static_cast<UnOp>(I.sub), regs[I.a]);
        ++pc;
        break;
      }
      case VmOp::Truthy:
        regs[I.dst] = Value(regs[I.a].truthy());
        ++pc;
        break;
      case VmOp::Jmp:
        pc = I.jump;
        break;
      case VmOp::JmpIfFalse:
        pc = regs[I.a].truthy() ? pc + 1 : I.jump;
        break;
      case VmOp::JmpIfTrue:
        pc = regs[I.a].truthy() ? I.jump : pc + 1;
        break;
      case VmOp::JmpIfGe:
        pc = regs[I.a].as_int() >= regs[I.b].as_int() ? I.jump : pc + 1;
        break;
      case VmOp::CheckStep:
        if (regs[I.a].as_int() <= 0) {
          throw std::runtime_error("for loop step must be positive");
        }
        ++pc;
        break;
      case VmOp::ForInc:
        regs[I.dst] = Value(regs[I.dst].as_int() + regs[I.a].as_int());
        ++pc;
        break;
      case VmOp::Tally:
        if constexpr (kCount) counts->int_ops += I.sub;
        ++pc;
        break;
      case VmOp::Send: {
        if (sink && *sink) {
          const SendSite& s = p.sends[I.a];
          SentMessage m;
          m.portal = s.portal;
          m.method = s.method;
          m.lat_min = s.lat_min;
          m.lat_max = s.lat_max;
          m.args.reserve(s.arg_regs.size());
          for (const std::uint16_t r : s.arg_regs) m.args.push_back(regs[r]);
          (*sink)(m);
        }
        ++pc;
        break;
      }
      case VmOp::Halt:
        // Dispatch-loop channel attribution: the measured (not declared)
        // traffic of this firing, reported before the loop exits.
        if (trace != nullptr && trace->tb != nullptr) {
          const std::int64_t ts = trace->rec->now_ns();
          if (pops > 0) {
            trace->tb->emit(ts, obs::EventKind::PopBatch, trace->in_edge, pops);
          }
          if (pushes > 0) {
            trace->tb->emit(ts, obs::EventKind::PushBatch, trace->out_edge,
                            pushes);
          }
        }
        return;
    }
  }
}

void VmBound::run_work(ir::InTape& in, ir::OutTape& out, OpCounts* counts,
                       const MessageSink* sink, const obs::FiringTrace* trace) {
  if (counts) {
    run_program<true>(prog_->work, &in, &out, counts, sink, trace);
  } else {
    run_program<false>(prog_->work, &in, &out, nullptr, sink, trace);
  }
}

void VmBound::run_init() {
  if (!prog_->has_init) return;
  run_program<false>(prog_->init, nullptr, nullptr, nullptr, nullptr, nullptr);
}

// ---- typed (dual-plane) dispatch --------------------------------------------
//
// TypedBound mirrors VmBound instruction for instruction: identical op
// counting, identical debug peek checks, identical error strings, identical
// trace batches.  The differences are exactly the ones typeflow proved safe:
// registers live in two raw planes (no variant), CountTag::ByResult is
// pre-resolved, and state loads/stores go through the slot's inferred class.

TypedBound::TypedBound(TypedFilterP prog, FilterState& state)
    : prog_(std::move(prog)) {
  const CompiledFilter& base = *prog_->base;
  scalars_.reserve(base.scalar_slots.size());
  for (const auto& name : base.scalar_slots) {
    auto it = state.scalars.find(name);
    if (it == state.scalars.end()) {
      throw std::logic_error("VM bind: state has no scalar '" + name + "'");
    }
    scalars_.push_back(&it->second);
  }
  arrays_.reserve(base.array_slots.size());
  for (const auto& name : base.array_slots) {
    auto it = state.arrays.find(name);
    if (it == state.arrays.end()) {
      throw std::logic_error("VM bind: state has no array '" + name + "'");
    }
    arrays_.push_back(&it->second);
  }
  dregs_.resize(prog_->work.dreg_init.size());
  iregs_.resize(prog_->work.ireg_init.size());
}

template <bool kCount>
void TypedBound::run_program(ir::InTape* in, ir::OutTape* out,
                             OpCounts* counts, const obs::FiringTrace* trace) {
  const TypedCode& p = prog_->work;
  double* const dr = dregs_.data();
  std::int64_t* const ir = iregs_.data();
  std::copy(p.dreg_init.begin(), p.dreg_init.end(), dr);
  std::copy(p.ireg_init.begin(), p.ireg_init.end(), ir);
  const TyInstr* const code = p.code.data();
  const CompiledFilter& base = *prog_->base;
  const bool debug = debug_channel_checks();
  std::int64_t pops = 0;
  std::int64_t pushes = 0;
  std::int32_t pc = 0;

  // ByResult is resolved at lowering time, so the tally is always one add.
  const auto tally = [&](CountTag tag) {
    if constexpr (kCount) {
      switch (tag) {
        case CountTag::None: break;
        case CountTag::IntOp: ++counts->int_ops; break;
        case CountTag::Flop: ++counts->flops; break;
        case CountTag::Div: ++counts->divs; break;
        case CountTag::Trans: ++counts->trans; break;
        case CountTag::Mem: ++counts->mem; break;
        case CountTag::Channel: ++counts->channel; break;
        case CountTag::ByResult: break;  // never emitted by typed_lower
      }
    } else {
      (void)tag;
    }
  };

  for (;;) {
    const TyInstr& I = code[pc];
    const bool ad = (I.mode & kModeAD) != 0;
    const bool bd = (I.mode & kModeBD) != 0;
    const bool dd = (I.mode & kModeDD) != 0;
    switch (I.op) {
      case FOp::Move:
        if (dd) {
          dr[I.dst] = dr[I.a];
        } else {
          ir[I.dst] = ir[I.a];
        }
        ++pc;
        break;
      case FOp::LoadScalar:
        if constexpr (kCount) ++counts->mem;
        if (dd) {
          dr[I.dst] = scalars_[I.a]->as_double();
        } else {
          ir[I.dst] = scalars_[I.a]->as_int();
        }
        ++pc;
        break;
      case FOp::StoreScalar:
        if constexpr (kCount) ++counts->mem;
        *scalars_[I.a] = dd ? Value(dr[I.dst]) : Value(ir[I.dst]);
        ++pc;
        break;
      case FOp::LoadElem: {
        const std::int64_t idx = typed_geti(dr, ir, I.b, bd);
        const auto& arr = *arrays_[I.a];
        if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
          elem_bounds_error("array index out of bounds", base.array_slots[I.a],
                            idx);
        }
        if constexpr (kCount) ++counts->mem;
        const Value& v = arr[static_cast<std::size_t>(idx)];
        if (dd) {
          dr[I.dst] = v.as_double();
        } else {
          ir[I.dst] = v.as_int();
        }
        ++pc;
        break;
      }
      case FOp::StoreElem: {
        const std::int64_t idx = typed_geti(dr, ir, I.b, bd);
        auto& arr = *arrays_[I.a];
        if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
          elem_bounds_error("array store out of bounds", base.array_slots[I.a],
                            idx);
        }
        if constexpr (kCount) ++counts->mem;
        arr[static_cast<std::size_t>(idx)] =
            dd ? Value(dr[I.dst]) : Value(ir[I.dst]);
        ++pc;
        break;
      }
      case FOp::RPeek: {
        const std::int64_t off = typed_geti(dr, ir, I.a, ad);
        if (debug) {
          if (off < 0 || pops + off >= base.peek_window) {
            peek_bounds_error(base.name, off, pops, base.peek_window);
          }
        }
        if constexpr (kCount) ++counts->channel;
        dr[I.dst] = in->peek_item(static_cast<int>(off));
        ++pc;
        break;
      }
      case FOp::RPop:
        if constexpr (kCount) ++counts->channel;
        ++pops;
        dr[I.dst] = in->pop_item();
        ++pc;
        break;
      case FOp::RPopN: {
        const std::int64_t n = typed_geti(dr, ir, I.a, ad);
        if (n > 0) {
          if constexpr (kCount) counts->channel += n;
          pops += n;
          in->pop_many(static_cast<int>(n));
        }
        ++pc;
        break;
      }
      case FOp::RPush:
        if constexpr (kCount) ++counts->channel;
        ++pushes;
        out->push_item(typed_getd(dr, ir, I.dst, dd));
        ++pc;
        break;
      case FOp::Bin:
        tally(I.count);
        typed_bin(static_cast<BinOp>(I.sub), dr, ir, I.dst, I.a, I.b, I.mode);
        ++pc;
        break;
      case FOp::Un:
        tally(I.count);
        typed_un(static_cast<UnOp>(I.sub), dr, ir, I.dst, I.a, I.mode);
        ++pc;
        break;
      case FOp::Truthy:
        ir[I.dst] = typed_truthy(dr, ir, I.a, ad) ? 1 : 0;
        ++pc;
        break;
      case FOp::Jmp:
        pc = I.jump;
        break;
      case FOp::JmpIfFalse:
        pc = typed_truthy(dr, ir, I.a, ad) ? pc + 1 : I.jump;
        break;
      case FOp::JmpIfTrue:
        pc = typed_truthy(dr, ir, I.a, ad) ? I.jump : pc + 1;
        break;
      case FOp::JmpIfGe:
        pc = typed_geti(dr, ir, I.a, ad) >= typed_geti(dr, ir, I.b, bd)
                 ? I.jump
                 : pc + 1;
        break;
      case FOp::CheckStep:
        if (typed_geti(dr, ir, I.a, ad) <= 0) {
          throw std::runtime_error("for loop step must be positive");
        }
        ++pc;
        break;
      case FOp::ForInc:
        ir[I.dst] =
            typed_geti(dr, ir, I.dst, dd) + typed_geti(dr, ir, I.a, ad);
        ++pc;
        break;
      case FOp::Tally:
        if constexpr (kCount) counts->int_ops += I.sub;
        ++pc;
        break;
      case FOp::Halt:
        if (trace != nullptr && trace->tb != nullptr) {
          const std::int64_t ts = trace->rec->now_ns();
          if (pops > 0) {
            trace->tb->emit(ts, obs::EventKind::PopBatch, trace->in_edge, pops);
          }
          if (pushes > 0) {
            trace->tb->emit(ts, obs::EventKind::PushBatch, trace->out_edge,
                            pushes);
          }
        }
        return;
      default:
        // TPeek/TPop/... / superinstructions never appear at the VM layer.
        throw std::logic_error("typed VM dispatch: unexpected opcode");
    }
  }
}

void TypedBound::run_work(ir::InTape& in, ir::OutTape& out, OpCounts* counts,
                          const obs::FiringTrace* trace) {
  if (counts) {
    run_program<true>(&in, &out, counts, trace);
  } else {
    run_program<false>(&in, &out, nullptr, trace);
  }
}

FilterState Vm::init_state(const ir::FilterSpec& spec,
                           const CompiledFilter& prog) {
  FilterState st = Interp::declare_state(spec);
  if (prog.has_init) {
    VmBound bound(std::make_shared<const CompiledFilter>(prog), st);
    bound.run_init();
  } else {
    Interp::run_init(spec, st);
  }
  return st;
}

void Vm::run_work(const CompiledFilterP& prog, FilterState& state,
                  ir::InTape& in, ir::OutTape& out, OpCounts* counts,
                  const MessageSink* sink) {
  VmBound bound(prog, state);
  bound.run_work(in, out, counts, sink);
}

// ---- disassembly ------------------------------------------------------------

namespace {

const char* op_name(VmOp op) {
  switch (op) {
    case VmOp::Move: return "move";
    case VmOp::LoadScalar: return "ld.s";
    case VmOp::StoreScalar: return "st.s";
    case VmOp::LoadElem: return "ld.e";
    case VmOp::StoreElem: return "st.e";
    case VmOp::Peek: return "peek";
    case VmOp::Pop: return "pop";
    case VmOp::PopN: return "popn";
    case VmOp::Push: return "push";
    case VmOp::Bin: return "bin";
    case VmOp::Un: return "un";
    case VmOp::Truthy: return "truthy";
    case VmOp::Jmp: return "jmp";
    case VmOp::JmpIfFalse: return "jf";
    case VmOp::JmpIfTrue: return "jt";
    case VmOp::JmpIfGe: return "jge";
    case VmOp::CheckStep: return "chkstep";
    case VmOp::ForInc: return "forinc";
    case VmOp::Tally: return "tally";
    case VmOp::Send: return "send";
    case VmOp::Halt: return "halt";
  }
  return "?";
}

}  // namespace

std::string disassemble(const CompiledProgram& p) {
  std::string out;
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const VmInstr& I = p.code[i];
    out += std::to_string(i) + ": " + op_name(I.op);
    switch (I.op) {
      case VmOp::Bin:
        out += " " + std::string(ir::to_string(static_cast<BinOp>(I.sub)));
        break;
      case VmOp::Un:
        out += " " + std::string(ir::to_string(static_cast<UnOp>(I.sub)));
        break;
      default:
        break;
    }
    out += " dst=r" + std::to_string(I.dst) + " a=" + std::to_string(I.a) +
           " b=" + std::to_string(I.b);
    if (I.jump >= 0) out += " ->" + std::to_string(I.jump);
    out += "\n";
  }
  return out;
}

}  // namespace sit::runtime
