#pragma once
// Lock-free single-producer/single-consumer ring: the cross-thread edge of
// the threaded runtime (sched/texec.h).
//
// Protocol: two monotonically increasing 64-bit positions.  `tail` counts
// items ever pushed, `head` items ever popped; they wrap modulo the
// power-of-two capacity only when indexing storage, so full/empty are just
// `tail - head == capacity` / `tail - head == 0` with no reserved slot.  The
// producer is the only writer of `tail` and the consumer the only writer of
// `head`; each side publishes its own position with a release store and
// observes the other side's with an acquire load (the release on `tail`
// makes the written items visible before the consumer can see the new
// position, and symmetrically the release on `head` returns slots).
//
// Cached-index optimization: each side keeps a private copy of the opposite
// position (`head_cache_` on the producer side, `tail_cache_` on the
// consumer side) and re-reads the shared atomic only when the cached view
// says full/empty.  A burst of n pushes then costs one acquire load total
// instead of n, and the two hot cache lines ping-pong between cores at the
// burst rate rather than the item rate.
//
// Deferred (bulk) publication: in deferred mode each side advances only its
// private position on push/pop and makes the whole burst visible with one
// explicit publish_tail()/publish_head() release store.  Combined with the
// cached indices, a batch of B*T items then costs exactly one release store
// and at most one acquire load per side, independent of B.  The batched
// threaded executor publishes once per actor per pipeline step; the
// tail_publishes()/head_publishes() counters exist so tests can pin that
// "one release store per batch" contract.  Immediate mode (the default)
// publishes inside every push/pop as before.
//
// Capacity is fixed at construction: the threaded executor sizes each ring
// from the schedule's per-steady-state edge traffic times the pipelining
// window, plus the post-init live items, so a correctly sized ring never
// rejects a push.  The tape methods therefore throw on overflow/underrun
// instead of blocking -- the executor's pre-firing waits (can_push/can_pop)
// are the only spin points.
//
// The cumulative counters and high_water are maintained for parity with
// Channel but are only meaningful when read quiescently (workers joined).

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/filter.h"

namespace sit::runtime {

class SpscRing final : public ir::InTape, public ir::OutTape {
 public:
  explicit SpscRing(std::size_t min_capacity, bool deferred = false)
      : deferred_(deferred) {
    std::size_t cap = 16;
    while (cap < min_capacity) cap *= 2;
    buf_.assign(cap, 0.0);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // ---- single-threaded setup (before any worker touches the ring) ----------
  //
  // Seed the ring with the live items of the channel it replaces and carry
  // over that channel's cumulative counters, so total_pushed()/total_popped()
  // continue the same n(t)/p(t) sequence the sequential executor would report.
  void preload(const std::vector<double>& items, std::int64_t prior_pushed,
               std::int64_t prior_popped) {
    if (items.size() > buf_.size()) {
      throw std::logic_error("SPSC ring preload exceeds capacity");
    }
    for (std::size_t i = 0; i < items.size(); ++i) buf_[i] = items[i];
    tail_.store(items.size(), std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
    tail_pos_ = items.size();
    head_pos_ = 0;
    head_cache_ = 0;
    tail_cache_ = items.size();
    published_tail_ = items.size();
    published_head_ = 0;
    high_water_ = items.size();
    base_pushed_ = prior_pushed - static_cast<std::int64_t>(items.size());
    base_popped_ = prior_popped;
  }

  // ---- producer side --------------------------------------------------------

  [[nodiscard]] bool can_push(std::size_t n) noexcept {
    if (tail_pos_ + n - head_cache_ <= buf_.size()) return true;
    head_cache_ = head_.load(std::memory_order_acquire);
    return tail_pos_ + n - head_cache_ <= buf_.size();
  }

  void push_item(double v) override {
    if (!can_push(1)) {
      throw std::runtime_error("SPSC ring overflow (channel mis-sized)");
    }
    buf_[tail_pos_ & mask_] = v;
    ++tail_pos_;
    if (!deferred_) publish_tail();
  }

  // Make every push since the last publish visible to the consumer.  One
  // release store per call; a no-op when nothing new was pushed.
  void publish_tail() noexcept {
    if (tail_pos_ == published_tail_) return;
    tail_.store(tail_pos_, std::memory_order_release);
    published_tail_ = tail_pos_;
    ++tail_publishes_;
  }

  // ---- consumer side --------------------------------------------------------

  [[nodiscard]] bool can_pop(std::size_t n) noexcept {
    if (tail_cache_ - head_pos_ >= n) return true;
    tail_cache_ = tail_.load(std::memory_order_acquire);
    const std::size_t live = tail_cache_ - head_pos_;
    if (live > high_water_) high_water_ = live;
    return live >= n;
  }

  double peek_item(int offset) override {
    const auto off = static_cast<std::size_t>(offset);
    if (offset < 0 || !can_pop(off + 1)) {
      throw std::runtime_error("peek(" + std::to_string(offset) +
                               ") beyond SPSC ring contents");
    }
    return buf_[(head_pos_ + off) & mask_];
  }

  double pop_item() override {
    if (!can_pop(1)) throw std::runtime_error("pop from empty SPSC ring");
    const double v = buf_[head_pos_ & mask_];
    ++head_pos_;
    if (!deferred_) publish_head();
    return v;
  }

  void pop_many(int n) override {
    if (n <= 0) return;
    if (!can_pop(static_cast<std::size_t>(n))) {
      throw std::runtime_error("pop from empty SPSC ring");
    }
    head_pos_ += static_cast<std::size_t>(n);
    if (!deferred_) publish_head();
  }

  // Return every slot freed since the last publish to the producer.  One
  // release store per call; a no-op when nothing new was popped.
  void publish_head() noexcept {
    if (head_pos_ == published_head_) return;
    head_.store(head_pos_, std::memory_order_release);
    published_head_ = head_pos_;
    ++head_publishes_;
  }

  // ---- quiescent accessors (no worker running) -----------------------------

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::int64_t total_pushed() const noexcept {
    return base_pushed_ +
           static_cast<std::int64_t>(tail_.load(std::memory_order_acquire));
  }
  [[nodiscard]] std::int64_t total_popped() const noexcept {
    return base_popped_ +
           static_cast<std::int64_t>(head_.load(std::memory_order_acquire));
  }
  // Peak occupancy as observed from the consumer side (a lower bound on the
  // true instantaneous peak -- sampled whenever the consumer refreshes).
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }
  // Cumulative release-store counts, one per publish (quiescent reads only;
  // each is written solely by its own side).
  [[nodiscard]] std::int64_t tail_publishes() const noexcept {
    return tail_publishes_;
  }
  [[nodiscard]] std::int64_t head_publishes() const noexcept {
    return head_publishes_;
  }
  [[nodiscard]] bool deferred() const noexcept { return deferred_; }

 private:
  std::vector<double> buf_;
  std::size_t mask_{0};
  bool deferred_{false};
  // Shared positions, one cache line each so producer/consumer stores do not
  // false-share.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> head_{0};
  // Producer-private.
  alignas(64) std::uint64_t tail_pos_{0};
  std::uint64_t head_cache_{0};
  std::uint64_t published_tail_{0};
  std::int64_t tail_publishes_{0};
  // Consumer-private.
  alignas(64) std::uint64_t head_pos_{0};
  std::uint64_t tail_cache_{0};
  std::uint64_t published_head_{0};
  std::int64_t head_publishes_{0};
  std::size_t high_water_{0};
  // Counter bases carried over from the migrated Channel (see preload).
  std::int64_t base_pushed_{0};
  std::int64_t base_popped_{0};
};

}  // namespace sit::runtime
