// Static tag inference + dual-plane lowering (see typed.h).
//
// The analysis is a standard forward dataflow over the bytecode CFG:
// per-instruction IN states of register tags, worklist-propagated to a
// fixpoint, with the state scalar/array classes as global lattice cells that
// are re-seeded and the flow re-run until they stabilize (a store can raise
// a class, which retags every load of that slot).  Lowering then walks the
// final states and emits one TyInstr per FInstr -- same indices, same jump
// targets -- refusing the moment any *read* observes Mixed.

#include "runtime/typed.h"

#include <deque>
#include <stdexcept>

#include "ir/ast.h"
#include "runtime/eval_ops.h"

namespace sit::runtime {

namespace {

using TagVec = std::vector<Tag>;

Tag bin_result(ir::BinOp op, Tag a, Tag b) {
  using ir::BinOp;
  switch (op) {
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Mod:
    case BinOp::Min:
    case BinOp::Max:
      if (a == Tag::Mixed || b == Tag::Mixed) return Tag::Mixed;
      return (a == Tag::Int && b == Tag::Int) ? Tag::Int : Tag::Double;
    case BinOp::Pow:
      return Tag::Double;
    default:
      // Comparisons, logic, bit ops, shifts: canonical Int (ir::Value(bool)).
      return Tag::Int;
  }
}

Tag un_result(ir::UnOp op, Tag a) {
  using ir::UnOp;
  switch (op) {
    case UnOp::Neg:
    case UnOp::Abs:
      return a;
    case UnOp::LNot:
    case UnOp::BNot:
    case UnOp::ToInt:
      return Tag::Int;
    default:
      return Tag::Double;
  }
}

// The whole-stream analysis state threaded through flow + lowering.
struct Flow {
  const TypedLowerInput* in{nullptr};
  const std::vector<FInstr>* code{nullptr};
  TagVec entry;
  std::vector<TagVec> states;  // IN state per instruction
  std::vector<char> reach;
  TagVec scls, acls;  // scalar / array classes (monotone across reruns)
  bool cls_changed{false};

  void raise_scalar(std::size_t slot, Tag t) {
    const Tag j = join_tag(scls[slot], t);
    if (j != scls[slot]) {
      scls[slot] = j;
      cls_changed = true;
    }
  }
  void raise_array(std::size_t slot, Tag t) {
    const Tag j = join_tag(acls[slot], t);
    if (j != acls[slot]) {
      acls[slot] = j;
      cls_changed = true;
    }
  }
};

// Mutate `s` from the IN state of `I` to its OUT state.
void transfer(Flow& F, const FInstr& I, TagVec& s) {
  switch (I.op) {
    case FOp::Move:
      s[I.dst] = s[I.a];
      break;
    case FOp::LoadScalar:
      s[I.dst] = F.scls[I.a];
      break;
    case FOp::StoreScalar:
      F.raise_scalar(I.a, s[I.dst]);
      break;
    case FOp::LoadElem:
      s[I.dst] = F.acls[I.a];
      break;
    case FOp::StoreElem:
      F.raise_array(I.a, s[I.dst]);
      break;
    case FOp::Bin:
      s[I.dst] = bin_result(static_cast<ir::BinOp>(I.sub), s[I.a], s[I.b]);
      break;
    case FOp::Un:
      s[I.dst] = un_result(static_cast<ir::UnOp>(I.sub), s[I.a]);
      break;
    case FOp::Truthy:
    case FOp::ForInc:
      s[I.dst] = Tag::Int;
      break;
    case FOp::RPeek:
    case FOp::TPeek:
    case FOp::RPop:
    case FOp::TPop:
      s[I.dst] = Tag::Double;
      break;
    case FOp::ResetRegs: {
      const FusedActorMeta& m = F.in->fused->actors[I.a];
      for (std::size_t k = 0; k < m.reg_init.size(); ++k) {
        s[m.reg_base + k] = value_tag(m.reg_init[k]);
      }
      break;
    }
    case FOp::MacLoop: {
      const MacLoopArgs& M = F.in->fused->macs[I.a];
      // Zero-trip leaves acc/slot untouched, so their OUT tag is the join.
      s[M.acc] = join_tag(s[M.acc], Tag::Double);
      s[M.slot] = join_tag(s[M.slot], Tag::Int);
      s[M.ri] = Tag::Int;
      break;
    }
    case FOp::PopComputePush: {
      const PcpArgs& P = F.in->fused->pcps[I.a];
      s[P.rpop] = Tag::Double;
      if (P.kind == PcpArgs::Kind::Bin) {
        s[P.rres] = bin_result(static_cast<ir::BinOp>(P.sub), s[P.a], s[P.b]);
      } else if (P.kind == PcpArgs::Kind::Un) {
        s[P.rres] = un_result(static_cast<ir::UnOp>(P.sub), s[P.a]);
      }
      break;
    }
    case FOp::CopyRun: {
      const CopyRunArgs& C = F.in->fused->copies[I.a];
      if (C.n > 0) s[C.reg] = Tag::Double;
      break;
    }
    default:
      // RPopN/TPopN/RPush/TPush, jumps, CheckStep, Tally, SetActor,
      // NativeFire, Halt: no register writes.
      break;
  }
}

// CFG successors of the instruction at `pc`.
int successors(const FInstr& I, int pc, int out[2]) {
  switch (I.op) {
    case FOp::Jmp:
      out[0] = I.jump;
      return 1;
    case FOp::JmpIfFalse:
    case FOp::JmpIfTrue:
    case FOp::JmpIfGe:
      out[0] = pc + 1;
      out[1] = I.jump;
      return 2;
    case FOp::Halt:
      return 0;
    default:
      out[0] = pc + 1;
      return 1;
  }
}

// Run the flow to fixpoint under the current classes; returns true if some
// class was raised (caller re-runs until stable).
bool run_flow(Flow& F) {
  const auto n = static_cast<int>(F.code->size());
  F.states.assign(static_cast<std::size_t>(n), TagVec());
  F.reach.assign(static_cast<std::size_t>(n), 0);
  F.cls_changed = false;
  std::deque<int> work;
  std::vector<char> queued(static_cast<std::size_t>(n), 0);

  auto join_into = [&](int idx, const TagVec& s) {
    const auto ui = static_cast<std::size_t>(idx);
    bool changed = false;
    if (!F.reach[ui]) {
      F.states[ui] = s;
      F.reach[ui] = 1;
      changed = true;
    } else {
      TagVec& dst = F.states[ui];
      for (std::size_t r = 0; r < dst.size(); ++r) {
        const Tag j = join_tag(dst[r], s[r]);
        if (j != dst[r]) {
          dst[r] = j;
          changed = true;
        }
      }
    }
    if (changed && !queued[ui]) {
      queued[ui] = 1;
      work.push_back(idx);
    }
  };

  if (n > 0) join_into(0, F.entry);
  while (!work.empty()) {
    const int pc = work.front();
    work.pop_front();
    queued[static_cast<std::size_t>(pc)] = 0;
    const FInstr& I = (*F.code)[static_cast<std::size_t>(pc)];
    TagVec s = F.states[static_cast<std::size_t>(pc)];
    transfer(F, I, s);
    int succ[2];
    const int ns = successors(I, pc, succ);
    for (int k = 0; k < ns; ++k) join_into(succ[k], s);
    // Fused registers persist across iterations: the trace's exit state
    // feeds the next iteration's entry.
    if (I.op == FOp::Halt && F.in->loop) join_into(0, s);
  }
  return F.cls_changed;
}

// Lowering context: the translation walk with refusal reporting.
struct Lower {
  Flow* F{nullptr};
  TypedCode* out{nullptr};
  std::string refusal;
  std::string actor;  // current actor name (fused traces)
  std::vector<char> written;

  [[nodiscard]] std::string site(const std::string& base) const {
    return actor.empty() ? base : base + ":" + actor;
  }

  bool fail(const std::string& why) {
    if (refusal.empty()) refusal = why;
    return false;
  }

  // A register read: Mixed refuses, otherwise reports the plane.
  bool read(const TagVec& s, std::uint16_t r, bool* dbl) {
    if (s[r] == Tag::Mixed) return fail(site("mixed-register"));
    *dbl = s[r] == Tag::Double;
    return true;
  }

  void note_write(std::uint16_t r, Tag t) {
    if (!written[r]) {
      written[r] = 1;
      out->reg_tag[r] = t;
    } else {
      out->reg_tag[r] = join_tag(out->reg_tag[r], t);
    }
  }
};

bool lower_one(Lower& L, const FInstr& I, const TagVec& s, TyInstr* T) {
  Flow& F = *L.F;
  bool ad = false, bd = false, dd = false;
  switch (I.op) {
    case FOp::Move: {
      if (!L.read(s, I.a, &ad)) return false;
      if (ad) T->mode = kModeAD | kModeDD;
      L.note_write(I.dst, ad ? Tag::Double : Tag::Int);
      break;
    }
    case FOp::LoadScalar: {
      if (F.scls[I.a] == Tag::Double) T->mode = kModeDD;
      L.note_write(I.dst, F.scls[I.a]);
      break;
    }
    case FOp::StoreScalar: {
      if (!L.read(s, I.dst, &dd)) return false;
      if (dd) T->mode = kModeDD;
      break;
    }
    case FOp::LoadElem: {
      if (!L.read(s, I.b, &bd)) return false;
      T->mode = static_cast<std::uint8_t>((bd ? kModeBD : 0) |
                                          (F.acls[I.a] == Tag::Double
                                               ? kModeDD : 0));
      L.note_write(I.dst, F.acls[I.a]);
      break;
    }
    case FOp::StoreElem: {
      if (!L.read(s, I.dst, &dd)) return false;
      if (!L.read(s, I.b, &bd)) return false;
      T->mode = static_cast<std::uint8_t>((dd ? kModeDD : 0) |
                                          (bd ? kModeBD : 0));
      break;
    }
    case FOp::Bin: {
      if (!L.read(s, I.a, &ad)) return false;
      if (!L.read(s, I.b, &bd)) return false;
      T->mode = static_cast<std::uint8_t>((ad ? kModeAD : 0) |
                                          (bd ? kModeBD : 0));
      const Tag rt = bin_result(static_cast<ir::BinOp>(I.sub),
                                ad ? Tag::Double : Tag::Int,
                                bd ? Tag::Double : Tag::Int);
      if (T->count == CountTag::ByResult) {
        T->count = rt == Tag::Int ? CountTag::IntOp : CountTag::Flop;
      }
      L.note_write(I.dst, rt);
      break;
    }
    case FOp::Un: {
      if (!L.read(s, I.a, &ad)) return false;
      if (ad) T->mode = kModeAD;
      const Tag rt = un_result(static_cast<ir::UnOp>(I.sub),
                               ad ? Tag::Double : Tag::Int);
      // The tagged loop tallies Un's ByResult on the *operand* tag; for
      // Neg/Abs (the only ByResult unaries) result tag == operand tag.
      if (T->count == CountTag::ByResult) {
        T->count = ad ? CountTag::Flop : CountTag::IntOp;
      }
      L.note_write(I.dst, rt);
      break;
    }
    case FOp::Truthy: {
      if (!L.read(s, I.a, &ad)) return false;
      if (ad) T->mode = kModeAD;
      L.note_write(I.dst, Tag::Int);
      break;
    }
    case FOp::JmpIfFalse:
    case FOp::JmpIfTrue:
    case FOp::CheckStep: {
      if (!L.read(s, I.a, &ad)) return false;
      if (ad) T->mode = kModeAD;
      break;
    }
    case FOp::JmpIfGe: {
      if (!L.read(s, I.a, &ad)) return false;
      if (!L.read(s, I.b, &bd)) return false;
      T->mode = static_cast<std::uint8_t>((ad ? kModeAD : 0) |
                                          (bd ? kModeBD : 0));
      break;
    }
    case FOp::ForInc: {
      if (!L.read(s, I.dst, &dd)) return false;
      if (!L.read(s, I.a, &ad)) return false;
      T->mode = static_cast<std::uint8_t>((dd ? kModeDD : 0) |
                                          (ad ? kModeAD : 0));
      L.note_write(I.dst, Tag::Int);
      break;
    }
    case FOp::RPeek:
    case FOp::TPeek: {
      if (!L.read(s, I.a, &ad)) return false;
      T->mode = static_cast<std::uint8_t>((ad ? kModeAD : 0) | kModeDD);
      L.note_write(I.dst, Tag::Double);
      break;
    }
    case FOp::RPop:
    case FOp::TPop: {
      T->mode = kModeDD;
      L.note_write(I.dst, Tag::Double);
      break;
    }
    case FOp::RPopN:
    case FOp::TPopN: {
      if (!L.read(s, I.a, &ad)) return false;
      if (ad) T->mode = kModeAD;
      break;
    }
    case FOp::RPush:
    case FOp::TPush: {
      if (!L.read(s, I.dst, &dd)) return false;
      if (dd) T->mode = kModeDD;
      break;
    }
    case FOp::SetActor: {
      if (F.in->fused) L.actor = F.in->fused->actors[I.a].name;
      break;
    }
    case FOp::ResetRegs: {
      const FusedActorMeta& m = F.in->fused->actors[I.a];
      for (std::size_t k = 0; k < m.reg_init.size(); ++k) {
        L.note_write(static_cast<std::uint16_t>(m.reg_base + k),
                     value_tag(m.reg_init[k]));
      }
      break;
    }
    case FOp::MacLoop: {
      const MacLoopArgs& M = F.in->fused->macs[I.a];
      if (s[M.ri] == Tag::Mixed || s[M.rhi] == Tag::Mixed ||
          s[M.rstep] == Tag::Mixed || s[M.acc] == Tag::Mixed) {
        return L.fail(L.site("mixed-register"));
      }
      // The raw double kernel needs Int bookkeeping, a Double accumulator,
      // and (mac form) an all-Double coefficient array.
      if (s[M.ri] != Tag::Int || s[M.rhi] != Tag::Int ||
          s[M.rstep] != Tag::Int || s[M.acc] != Tag::Double ||
          (M.has_array && F.acls[M.arr] != Tag::Double)) {
        return L.fail(L.site("super-untyped"));
      }
      L.note_write(M.acc, Tag::Double);
      L.note_write(M.slot, Tag::Int);
      L.note_write(M.ri, Tag::Int);
      break;
    }
    case FOp::PopComputePush: {
      const PcpArgs& P = F.in->fused->pcps[I.a];
      TagVec t = s;
      t[P.rpop] = Tag::Double;
      TypedPcp& tp = L.out->pcps[I.a];
      tp.tag = P.tag;
      if (P.kind == PcpArgs::Kind::Bin) {
        if (!L.read(t, P.a, &ad)) return false;
        if (!L.read(t, P.b, &bd)) return false;
        tp.mode = static_cast<std::uint8_t>((ad ? kModeAD : 0) |
                                            (bd ? kModeBD : 0));
        const Tag rt = bin_result(static_cast<ir::BinOp>(P.sub),
                                  ad ? Tag::Double : Tag::Int,
                                  bd ? Tag::Double : Tag::Int);
        tp.res_double = rt == Tag::Double;
        if (tp.tag == CountTag::ByResult) {
          tp.tag = rt == Tag::Int ? CountTag::IntOp : CountTag::Flop;
        }
        L.note_write(P.rres, rt);
      } else if (P.kind == PcpArgs::Kind::Un) {
        if (!L.read(t, P.a, &ad)) return false;
        if (ad) tp.mode = kModeAD;
        const Tag rt = un_result(static_cast<ir::UnOp>(P.sub),
                                 ad ? Tag::Double : Tag::Int);
        tp.res_double = rt == Tag::Double;
        if (tp.tag == CountTag::ByResult) {
          tp.tag = ad ? CountTag::Flop : CountTag::IntOp;
        }
        L.note_write(P.rres, rt);
      } else {
        tp.res_double = true;
      }
      L.note_write(P.rpop, Tag::Double);
      break;
    }
    case FOp::CopyRun: {
      const CopyRunArgs& C = F.in->fused->copies[I.a];
      if (C.n > 0) L.note_write(C.reg, Tag::Double);
      break;
    }
    case FOp::Jmp:
    case FOp::Tally:
    case FOp::NativeFire:
    case FOp::Halt:
      break;
  }
  return true;
}

}  // namespace

const char* tag_name(Tag t) {
  switch (t) {
    case Tag::Int:
      return "int";
    case Tag::Double:
      return "double";
    case Tag::Mixed:
      return "mixed";
  }
  return "?";
}

bool typed_lower(const TypedLowerInput& in, TypedCode* out,
                 std::string* refusal) {
  Flow F;
  F.in = &in;
  F.code = in.code;
  F.entry.assign(in.num_regs, Tag::Int);
  for (std::size_t r = 0; r < in.reg_init.size() && r < in.num_regs; ++r) {
    F.entry[r] = value_tag(in.reg_init[r]);
  }
  F.scls = in.scalar_seed;
  F.acls = in.array_seed;

  // Classes are monotone, so this terminates in <= 2 raises per slot.
  while (run_flow(F)) {
  }

  Lower L;
  L.F = &F;
  L.out = out;
  out->code.clear();
  out->code.reserve(in.code->size());
  out->reg_tag.assign(in.num_regs, Tag::Int);
  out->scalar_class = F.scls;
  out->array_class = F.acls;
  out->push_tag = Tag::Double;
  bool pushed = false;
  out->pcps.assign(in.fused ? in.fused->pcps.size() : 0, TypedPcp{});
  L.written.assign(in.num_regs, 0);

  // A Mixed state class cannot live in either raw plane (and the fused
  // mirrors could not hold it); name the slot in the refusal.
  for (std::size_t sslot = 0; sslot < F.scls.size(); ++sslot) {
    if (F.scls[sslot] != Tag::Mixed) continue;
    std::string name = in.scalar_names && sslot < in.scalar_names->size()
                           ? (*in.scalar_names)[sslot]
                           : std::to_string(sslot);
    if (in.fused) {
      for (const auto& m : in.fused->actors) {
        if (sslot >= m.scalar_base && sslot < m.scalar_base + m.num_scalars) {
          name = m.name + "." + name;
          break;
        }
      }
    }
    if (refusal) *refusal = "mixed-state:" + name;
    return false;
  }
  for (std::size_t aslot = 0; aslot < F.acls.size(); ++aslot) {
    if (F.acls[aslot] != Tag::Mixed) continue;
    std::string name = in.array_names && aslot < in.array_names->size()
                           ? (*in.array_names)[aslot]
                           : std::to_string(aslot);
    if (in.fused) {
      for (const auto& m : in.fused->actors) {
        if (aslot >= m.array_base && aslot < m.array_base + m.num_arrays) {
          name = m.name + "." + name;
          break;
        }
      }
    }
    if (refusal) *refusal = "mixed-state:" + name;
    return false;
  }

  for (std::size_t pc = 0; pc < in.code->size(); ++pc) {
    const FInstr& I = (*in.code)[pc];
    TyInstr T;
    T.op = I.op;
    T.sub = I.sub;
    T.count = I.count;
    T.dst = I.dst;
    T.a = I.a;
    T.b = I.b;
    T.jump = I.jump;
    T.edge = I.edge;
    if (F.reach[pc]) {
      if (!lower_one(L, I, F.states[pc], &T)) {
        if (refusal) *refusal = L.refusal;
        return false;
      }
      if (I.op == FOp::RPush || I.op == FOp::TPush) {
        const Tag pt = (T.mode & kModeDD) != 0 ? Tag::Double : Tag::Int;
        out->push_tag = pushed ? join_tag(out->push_tag, pt) : pt;
        pushed = true;
      }
    } else {
      // Unreachable padding: keep indices/jumps aligned, never executed.
      T = TyInstr{};
      T.op = FOp::Halt;
    }
    out->code.push_back(T);
  }

  // Split the register template across the planes.
  out->dreg_init.assign(in.num_regs, 0.0);
  out->ireg_init.assign(in.num_regs, 0);
  auto place = [&](std::size_t r, const ir::Value& v) {
    if (v.is_int()) {
      out->ireg_init[r] = v.as_int();
    } else {
      out->dreg_init[r] = v.as_double();
    }
  };
  for (std::size_t r = 0; r < in.reg_init.size() && r < in.num_regs; ++r) {
    place(r, in.reg_init[r]);
  }
  if (in.fused) {
    for (const auto& m : in.fused->actors) {
      for (std::size_t k = 0; k < m.reg_init.size(); ++k) {
        place(m.reg_base + k, m.reg_init[k]);
      }
    }
  }

  // Never-written registers keep their template tag (pooled constants).
  for (std::size_t r = 0; r < in.num_regs; ++r) {
    if (!L.written[r]) out->reg_tag[r] = F.entry[r];
  }
  out->typed_regs = 0;
  for (const Tag t : out->reg_tag) {
    if (t == Tag::Double) ++out->typed_regs;
  }
  return true;
}

}  // namespace sit::runtime
