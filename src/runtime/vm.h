#pragma once
// Bytecode work-function engine.
//
// The tree interpreter (interp.h) re-resolves every variable name through an
// unordered_map and chases shared_ptr AST nodes on every firing.  This engine
// removes that steady-state overhead: compile.h lowers a filter's work/init
// ASTs *once* to a flat register bytecode (every scalar, array, and local
// resolved to an integer slot; constants pooled and preloaded; peek/pop/push
// as dedicated opcodes), and the dispatch loop below executes it with zero
// string hashing per firing.  Semantics are bit-identical to the tree
// interpreter by construction -- both engines share the scalar kernels in
// eval_ops.h, and tests/test_vm.cc holds them equal differentially.
//
// Register file layout (per program): [locals | pooled constants | loop
// bookkeeping | expression temporaries].  The template `reg_init` is copied
// in at entry, which both preloads constants and resets locals.
//
// Operation counting: every instruction carries a CountTag resolved at
// compile time (mem, channel, div, ...), so tallying is a single add; only
// ops whose int/float classification depends on runtime value tags
// (Add/Sub/Mul/Min/Max/Neg/Abs) carry ByResult and test one tag bit.  A
// null OpCounts selects a dispatch loop with counting compiled out.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/filter.h"
#include "ir/value.h"
#include "obs/trace.h"
#include "runtime/interp.h"
#include "runtime/opcounts.h"

namespace sit::runtime {

enum class VmOp : std::uint8_t {
  Move,         // r[dst] = r[a]
  LoadScalar,   // r[dst] = state scalar slot a
  StoreScalar,  // state scalar slot a = r[dst]
  LoadElem,     // r[dst] = array slot a [ r[b] ]   (bounds-checked)
  StoreElem,    // array slot a [ r[b] ] = r[dst]   (bounds-checked)
  Peek,         // r[dst] = in.peek(r[a])
  Pop,          // r[dst] = in.pop()
  PopN,         // discard r[a] items
  Push,         // out.push(r[dst])
  Bin,          // r[dst] = <BinOp sub>(r[a], r[b])
  Un,           // r[dst] = <UnOp sub>(r[a])
  Truthy,       // r[dst] = Value(r[a] is truthy)   (bool as int, no count)
  Jmp,          // pc = jump
  JmpIfFalse,   // if (!r[a].truthy()) pc = jump
  JmpIfTrue,    // if (r[a].truthy())  pc = jump
  JmpIfGe,      // if (r[a].as_int() >= r[b].as_int()) pc = jump  (loop test)
  CheckStep,    // throw unless r[a].as_int() > 0   (for-loop step guard)
  ForInc,       // r[dst] = int(r[dst] + r[a])      (loop induction, no count)
  Tally,        // counts->int_ops += sub           (If/Cond/LAnd/LOr/For costs)
  Send,         // emit SendSite a with args from its recorded registers
  Halt,
};

// Which OpCounts field an instruction bumps; fixed at compile time except
// ByResult (int_ops vs flops decided by the result's runtime tag, exactly
// like the tree interpreter's count_bin / count_un).
enum class CountTag : std::uint8_t {
  None, IntOp, Flop, Div, Trans, Mem, Channel, ByResult,
};

struct VmInstr {
  VmOp op{VmOp::Halt};
  std::uint8_t sub{0};  // BinOp/UnOp ordinal, or Tally amount
  CountTag count{CountTag::None};
  std::uint16_t dst{0}, a{0}, b{0};
  std::int32_t jump{-1};
};

// One Send statement: the message skeleton plus the registers its
// already-evaluated arguments live in.
struct SendSite {
  std::string portal, method;
  int lat_min{0}, lat_max{0};
  std::vector<std::uint16_t> arg_regs;
};

struct CompiledProgram {
  std::vector<VmInstr> code;
  std::vector<ir::Value> reg_init;  // register template: locals zeroed, consts pooled
  std::vector<SendSite> sends;
};

struct CompiledFilter {
  std::string name;
  std::int64_t peek_window{0};  // max(peek, pop): debug channel-check bound
  std::vector<std::string> scalar_slots;  // slot -> state scalar name
  std::vector<std::string> array_slots;   // slot -> state array name
  CompiledProgram work;
  bool has_init{false};
  CompiledProgram init;
};

using CompiledFilterP = std::shared_ptr<const CompiledFilter>;

// A compiled filter bound to one FilterState's storage.  Binding resolves
// state slots to raw pointers into the state's maps once, so firings do no
// hashing at all.  The tree interpreter and message handlers mutate the very
// same storage, which keeps the engines freely mixable on one state (a
// handler delivered between VM firings is visible to the next firing).
//
// The FilterState must outlive the binding, must not be moved, and must not
// gain or lose entries -- all true for states made by Interp::declare_state
// and then only mutated through either engine.
class VmBound {
 public:
  VmBound(CompiledFilterP prog, FilterState& state);

  // One invocation of work.  `counts` may be null (counting is skipped
  // entirely); `sink` receives Send messages as in the tree interpreter.
  // `trace`, when non-null, makes the dispatch loop report the firing's
  // measured channel batches (items popped/pushed) as trace events.
  void run_work(ir::InTape& in, ir::OutTape& out, OpCounts* counts,
                const MessageSink* sink = nullptr,
                const obs::FiringTrace* trace = nullptr);

  // Run the compiled init function (no tapes; init may not touch channels).
  void run_init();

  [[nodiscard]] const CompiledFilter& program() const { return *prog_; }

 private:
  template <bool kCount>
  void run_program(const CompiledProgram& p, ir::InTape* in, ir::OutTape* out,
                   OpCounts* counts, const MessageSink* sink,
                   const obs::FiringTrace* trace);

  CompiledFilterP prog_;
  std::vector<ir::Value*> scalars_;              // slot -> &state.scalars[name]
  std::vector<std::vector<ir::Value>*> arrays_;  // slot -> &state.arrays[name]
  std::vector<ir::Value> regs_;                  // scratch register file
};

class Vm {
 public:
  // Declare state variables and run the *compiled* init function; the
  // bytecode twin of Interp::init_state.
  static FilterState init_state(const ir::FilterSpec& spec,
                                const CompiledFilter& prog);

  // One-shot work invocation (binds on each call; prefer a persistent
  // VmBound on hot paths).
  static void run_work(const CompiledFilterP& prog, FilterState& state,
                       ir::InTape& in, ir::OutTape& out, OpCounts* counts,
                       const MessageSink* sink = nullptr);
};

// Human-readable disassembly, for debugging and the bytecode docs.
std::string disassemble(const CompiledProgram& p);

}  // namespace sit::runtime
