#include "runtime/interp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/eval_ops.h"

namespace sit::runtime {

using ir::BinOp;
using ir::Expr;
using ir::ExprP;
using ir::Stmt;
using ir::StmtP;
using ir::UnOp;
using ir::Value;

namespace {

bool g_debug_channel_checks = false;

// Execution context for one invocation (work, init, or a handler).
struct Ctx {
  FilterState* state{nullptr};
  std::unordered_map<std::string, Value> locals;
  ir::InTape* in{nullptr};
  ir::OutTape* out{nullptr};
  OpCounts* counts{nullptr};
  const MessageSink* sink{nullptr};
  const ir::FilterSpec* spec{nullptr};
  std::int64_t pops{0};  // pops so far this invocation (debug bounds check)

  void count_bin(const Value& r, BinOp op) {
    if (!counts) return;
    switch (op) {
      case BinOp::Div:
      case BinOp::Mod:
        ++counts->divs;
        break;
      case BinOp::Pow:
        ++counts->trans;
        break;
      default:
        if (r.is_int()) {
          ++counts->int_ops;
        } else {
          ++counts->flops;
        }
        break;
    }
  }
};

Value eval(const ExprP& e, Ctx& ctx);

Value read_var(const std::string& name, Ctx& ctx) {
  auto lit = ctx.locals.find(name);
  if (lit != ctx.locals.end()) return lit->second;
  auto sit_ = ctx.state->scalars.find(name);
  if (sit_ != ctx.state->scalars.end()) {
    if (ctx.counts) ++ctx.counts->mem;
    return sit_->second;
  }
  throw std::runtime_error("undefined variable '" + name + "'");
}

std::vector<Value>& array_of(const std::string& name, Ctx& ctx) {
  auto it = ctx.state->arrays.find(name);
  if (it == ctx.state->arrays.end()) {
    throw std::runtime_error("undefined array '" + name + "'");
  }
  return it->second;
}

// apply_bin / apply_un live in runtime/eval_ops.h, shared with the VM.

void count_un(UnOp op, const Value& a, Ctx& ctx) {
  if (!ctx.counts) return;
  switch (op) {
    case UnOp::Neg:
    case UnOp::Abs:
      a.is_int() ? ++ctx.counts->int_ops : ++ctx.counts->flops;
      break;
    case UnOp::LNot:
    case UnOp::BNot:
      ++ctx.counts->int_ops;
      break;
    case UnOp::Sin:
    case UnOp::Cos:
    case UnOp::Tan:
    case UnOp::Exp:
    case UnOp::Log:
    case UnOp::Sqrt:
      ++ctx.counts->trans;
      break;
    case UnOp::Floor:
    case UnOp::Ceil:
    case UnOp::Round:
      ++ctx.counts->flops;
      break;
    case UnOp::ToInt:
    case UnOp::ToFloat:
      break;
  }
}

Value eval(const ExprP& e, Ctx& ctx) {
  switch (e->kind) {
    case Expr::Kind::IntConst:
      return Value(e->ival);
    case Expr::Kind::FloatConst:
      return Value(e->fval);
    case Expr::Kind::Var:
      return read_var(e->name, ctx);
    case Expr::Kind::ArrayRef: {
      const auto idx = eval(e->a, ctx).as_int();
      auto& arr = array_of(e->name, ctx);
      if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
        throw std::runtime_error("array index out of bounds: " + e->name + "[" +
                                 std::to_string(idx) + "]");
      }
      if (ctx.counts) ++ctx.counts->mem;
      return arr[static_cast<std::size_t>(idx)];
    }
    case Expr::Kind::Peek: {
      if (!ctx.in) throw std::runtime_error("peek outside work function");
      const auto off = eval(e->a, ctx).as_int();
      if (g_debug_channel_checks && ctx.spec) {
        const std::int64_t window = std::max(ctx.spec->peek, ctx.spec->pop);
        if (off < 0 || ctx.pops + off >= window) {
          throw std::runtime_error(
              "peek out of bounds in '" + ctx.spec->name + "': peek(" +
              std::to_string(off) + ") after " + std::to_string(ctx.pops) +
              " pop(s) exceeds the declared window of " +
              std::to_string(window));
        }
      }
      if (ctx.counts) ++ctx.counts->channel;
      return Value(ctx.in->peek_item(static_cast<int>(off)));
    }
    case Expr::Kind::Pop: {
      if (!ctx.in) throw std::runtime_error("pop outside work function");
      if (ctx.counts) ++ctx.counts->channel;
      ++ctx.pops;
      return Value(ctx.in->pop_item());
    }
    case Expr::Kind::Bin: {
      // Short-circuit logical operators; everything else is strict.
      if (e->bop == BinOp::LAnd) {
        if (ctx.counts) ++ctx.counts->int_ops;
        if (!eval(e->a, ctx).truthy()) return Value(false);
        return Value(eval(e->b, ctx).truthy());
      }
      if (e->bop == BinOp::LOr) {
        if (ctx.counts) ++ctx.counts->int_ops;
        if (eval(e->a, ctx).truthy()) return Value(true);
        return Value(eval(e->b, ctx).truthy());
      }
      const Value a = eval(e->a, ctx);
      const Value b = eval(e->b, ctx);
      const Value r = apply_bin(e->bop, a, b);
      ctx.count_bin(r, e->bop);
      return r;
    }
    case Expr::Kind::Un: {
      const Value a = eval(e->a, ctx);
      count_un(e->uop, a, ctx);
      return apply_un(e->uop, a);
    }
    case Expr::Kind::Cond: {
      if (ctx.counts) ++ctx.counts->int_ops;
      return eval(e->a, ctx).truthy() ? eval(e->b, ctx) : eval(e->c, ctx);
    }
  }
  throw std::runtime_error("unhandled expr kind");
}

void exec(const StmtP& s, Ctx& ctx);

void store_var(const std::string& name, const Value& v, Ctx& ctx) {
  auto sit_ = ctx.state->scalars.find(name);
  if (sit_ != ctx.state->scalars.end()) {
    // Preserve the declared type of integer state variables.
    if (ctx.counts) ++ctx.counts->mem;
    sit_->second = v;
    return;
  }
  ctx.locals[name] = v;
}

void exec(const StmtP& s, Ctx& ctx) {
  if (!s) return;
  switch (s->kind) {
    case Stmt::Kind::Block:
      for (const auto& c : s->stmts) exec(c, ctx);
      break;
    case Stmt::Kind::Assign:
      store_var(s->name, eval(s->value, ctx), ctx);
      break;
    case Stmt::Kind::ArrayAssign: {
      const auto idx = eval(s->index, ctx).as_int();
      const Value v = eval(s->value, ctx);
      auto& arr = array_of(s->name, ctx);
      if (idx < 0 || static_cast<std::size_t>(idx) >= arr.size()) {
        throw std::runtime_error("array store out of bounds: " + s->name + "[" +
                                 std::to_string(idx) + "]");
      }
      if (ctx.counts) ++ctx.counts->mem;
      arr[static_cast<std::size_t>(idx)] = v;
      break;
    }
    case Stmt::Kind::Push: {
      if (!ctx.out) throw std::runtime_error("push outside work function");
      const Value v = eval(s->value, ctx);
      if (ctx.counts) ++ctx.counts->channel;
      ctx.out->push_item(v.as_double());
      break;
    }
    case Stmt::Kind::PopN: {
      if (!ctx.in) throw std::runtime_error("pop outside work function");
      const auto n = eval(s->index, ctx).as_int();
      if (n > 0) {
        if (ctx.counts) ctx.counts->channel += n;
        ctx.pops += n;
        ctx.in->pop_many(static_cast<int>(n));
      }
      break;
    }
    case Stmt::Kind::For: {
      const auto lo = eval(s->lo, ctx).as_int();
      const auto hi = eval(s->hi, ctx).as_int();
      const auto step = eval(s->step, ctx).as_int();
      if (step <= 0) throw std::runtime_error("for loop step must be positive");
      for (std::int64_t i = lo; i < hi; i += step) {
        ctx.locals[s->name] = Value(i);
        if (ctx.counts) {
          ++ctx.counts->int_ops;  // increment
          ++ctx.counts->int_ops;  // bound compare
        }
        exec(s->body, ctx);
      }
      break;
    }
    case Stmt::Kind::If:
      if (ctx.counts) ++ctx.counts->int_ops;
      if (eval(s->cond, ctx).truthy()) {
        exec(s->body, ctx);
      } else {
        exec(s->elseBody, ctx);
      }
      break;
    case Stmt::Kind::Send: {
      SentMessage m;
      m.portal = s->name;
      m.method = s->method;
      for (const auto& a : s->args) m.args.push_back(eval(a, ctx));
      m.lat_min = s->latMin;
      m.lat_max = s->latMax;
      if (ctx.sink && *ctx.sink) (*ctx.sink)(m);
      break;
    }
  }
}

}  // namespace

void set_debug_channel_checks(bool enabled) { g_debug_channel_checks = enabled; }
bool debug_channel_checks() { return g_debug_channel_checks; }

FilterState Interp::declare_state(const ir::FilterSpec& spec) {
  FilterState st;
  for (const auto& d : spec.state) {
    if (d.is_array) {
      std::vector<Value> arr(static_cast<std::size_t>(d.size),
                             d.is_int ? Value(std::int64_t{0}) : Value(0.0));
      for (std::size_t i = 0; i < d.init.size() && i < arr.size(); ++i) {
        arr[i] = d.init[i];
      }
      st.arrays[d.name] = std::move(arr);
    } else {
      Value v = d.is_int ? Value(std::int64_t{0}) : Value(0.0);
      if (!d.init.empty()) v = d.init[0];
      st.scalars[d.name] = v;
    }
  }
  return st;
}

void Interp::run_init(const ir::FilterSpec& spec, FilterState& state) {
  if (!spec.init) return;
  Ctx ctx;
  ctx.state = &state;
  ctx.spec = &spec;
  exec(spec.init, ctx);
}

FilterState Interp::init_state(const ir::FilterSpec& spec) {
  FilterState st = declare_state(spec);
  run_init(spec, st);
  return st;
}

void Interp::run_work(const ir::FilterSpec& spec, FilterState& state,
                      ir::InTape& in, ir::OutTape& out, OpCounts* counts,
                      const MessageSink* sink) {
  Ctx ctx;
  ctx.state = &state;
  ctx.in = &in;
  ctx.out = &out;
  ctx.counts = counts;
  ctx.sink = sink;
  ctx.spec = &spec;
  exec(spec.work, ctx);
}

void Interp::run_handler(const ir::FilterSpec& spec, FilterState& state,
                         const std::string& method,
                         const std::vector<ir::Value>& args) {
  auto it = spec.handlers.find(method);
  if (it == spec.handlers.end()) {
    throw std::runtime_error("filter '" + spec.name + "' has no handler '" +
                             method + "'");
  }
  const ir::Handler& h = it->second;
  if (h.params.size() != args.size()) {
    throw std::runtime_error("handler '" + method + "' arity mismatch");
  }
  Ctx ctx;
  ctx.state = &state;
  ctx.spec = &spec;
  for (std::size_t i = 0; i < args.size(); ++i) ctx.locals[h.params[i]] = args[i];
  exec(h.body, ctx);
}

}  // namespace sit::runtime
