#pragma once
// Operation accounting.
//
// The paper's evaluation reports statically-estimated work, compute
// utilization, and MFLOPS.  The interpreter tallies abstract machine
// operations into this struct; `weighted()` converts them into cycles of the
// modeled single-issue core (machine/machine.h documents the cost table) and
// `flops` counts just the floating-point arithmetic for MFLOPS.

#include <cstdint>

namespace sit::runtime {

struct OpCounts {
  std::int64_t int_ops{0};     // integer add/sub/mul/logic/compare
  std::int64_t flops{0};       // floating add/sub/mul
  std::int64_t divs{0};        // divisions (int or float)
  std::int64_t trans{0};       // sin/cos/exp/log/sqrt/pow
  std::int64_t mem{0};         // state variable / array accesses
  std::int64_t channel{0};     // push/pop/peek operations

  // Cycle cost on the modeled single-issue, in-order core.
  [[nodiscard]] double weighted() const {
    return static_cast<double>(int_ops) + static_cast<double>(flops) +
           4.0 * static_cast<double>(divs) + 25.0 * static_cast<double>(trans) +
           1.0 * static_cast<double>(mem) + 2.0 * static_cast<double>(channel);
  }

  // Floating point operations including the expensive ones (a transcendental
  // is libm work, counted as one flop for MFLOPS purposes, as Raw's numbers
  // count issued FP instructions; divisions count as one).
  [[nodiscard]] double total_flops() const {
    return static_cast<double>(flops) + static_cast<double>(divs) +
           static_cast<double>(trans);
  }

  OpCounts& operator+=(const OpCounts& o) {
    int_ops += o.int_ops;
    flops += o.flops;
    divs += o.divs;
    trans += o.trans;
    mem += o.mem;
    channel += o.channel;
    return *this;
  }
};

}  // namespace sit::runtime
