#pragma once
// FIFO channels ("tapes").
//
// A channel is the paper's data tape: filters push to the front and pop from
// the end, and may peek at not-yet-popped items.  The channel additionally
// remembers the *cumulative* number of items ever pushed and popped -- n(t)
// and p(t) in the paper's operational semantics -- which the sdep/messaging
// machinery reads to decide message delivery points.
//
// Storage is a power-of-two ring buffer: live items occupy `count_` slots
// starting at `head_`, indices wrap with a mask instead of a modulo, and
// both peek and pop are branch-light O(1) on contiguous memory (the deque
// this replaced cost a segment-map indirection per access).  Invariants:
//   * capacity is 0 or a power of two; mask_ == capacity - 1;
//   * head_ <= mask_ whenever capacity > 0;
//   * growth preserves FIFO order by re-linearizing live items at slot 0.

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/filter.h"

namespace sit::runtime {

class Channel final : public ir::InTape, public ir::OutTape {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  void push_item(double v) override {
    if (count_ == buf_.size()) grow(count_ + 1);
    buf_[(head_ + count_) & mask_] = v;
    ++count_;
    ++total_pushed_;
  }

  double pop_item() override {
    if (count_ == 0) throw std::runtime_error("pop from empty channel");
    const double v = buf_[head_];
    head_ = (head_ + 1) & mask_;
    --count_;
    ++total_popped_;
    return v;
  }

  // Bulk discard: one bounds check, then a single index advance -- the
  // symmetric fast path to push_many (decimation loops pop stride items per
  // output without looking at them).
  void pop_many(int n) override {
    if (n <= 0) return;
    const auto un = static_cast<std::size_t>(n);
    if (un > count_) throw std::runtime_error("pop from empty channel");
    head_ = (head_ + un) & mask_;
    count_ -= un;
    total_popped_ += n;
  }

  double peek_item(int offset) override {
    if (offset < 0 || static_cast<std::size_t>(offset) >= count_) {
      throw std::runtime_error("peek(" + std::to_string(offset) +
                               ") beyond channel contents (" +
                               std::to_string(count_) + ")");
    }
    return buf_[(head_ + static_cast<std::size_t>(offset)) & mask_];
  }

  // Bulk append: one capacity check, then at most two contiguous copies
  // (the write region may wrap once around the ring).
  void push_many(const std::vector<double>& vs) {
    if (vs.empty()) return;
    if (count_ + vs.size() > buf_.size()) grow(count_ + vs.size());
    const std::size_t start = (head_ + count_) & mask_;
    const std::size_t first = std::min(vs.size(), buf_.size() - start);
    std::copy_n(vs.data(), first, buf_.data() + start);
    std::copy_n(vs.data() + first, vs.size() - first, buf_.data());
    count_ += vs.size();
    total_pushed_ += static_cast<std::int64_t>(vs.size());
  }

  // Pre-size the ring so the next `n`-item burst does not reallocate.
  void reserve_items(std::size_t n) {
    if (count_ + n > buf_.size()) grow(count_ + n);
  }

  // Cumulative counters: n(t) = items ever pushed, p(t) = items ever popped.
  [[nodiscard]] std::int64_t total_pushed() const noexcept { return total_pushed_; }
  [[nodiscard]] std::int64_t total_popped() const noexcept { return total_popped_; }

  // --- fused-engine bulk transfer (runtime/fused.h) -------------------------
  // The fused steady-state trace lowers a fully-internal channel to a flat
  // array for the duration of a run_steady call: drain_items moves the live
  // contents out in FIFO order and restore_items moves them back at
  // deactivation.  Neither touches the cumulative n(t)/p(t) counters -- the
  // trace advances them in bulk via advance_counters once per iteration, so
  // the counters stay bit-equal to a per-item execution.

  // Copy all live items to dst (which must hold size() doubles) and empty the
  // channel.  Returns the number of items moved.
  std::size_t drain_items(double* dst) noexcept {
    for (std::size_t i = 0; i < count_; ++i) {
      dst[i] = buf_[(head_ + i) & mask_];
    }
    const std::size_t n = count_;
    count_ = 0;
    head_ = 0;
    return n;
  }

  // Refill an empty channel with n items in FIFO order.
  void restore_items(const double* src, std::size_t n) {
    if (count_ != 0) {
      throw std::logic_error("restore_items on a non-empty channel");
    }
    if (n == 0) return;
    if (n > buf_.size()) grow(n);
    head_ = 0;
    std::copy_n(src, n, buf_.data());
    count_ = n;
  }

  // Bulk-advance the cumulative counters without moving data.
  void advance_counters(std::int64_t pushed, std::int64_t popped) noexcept {
    total_pushed_ += pushed;
    total_popped_ += popped;
  }

  // High-water mark of live items, for buffer-requirement reporting.
  void note_high_water() noexcept { high_water_ = std::max(high_water_, count_); }
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

 private:
  void grow(std::size_t min_cap) {
    std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    while (cap < min_cap) cap *= 2;
    std::vector<double> next(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = buf_[(head_ + i) & mask_];
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<double> buf_;
  std::size_t head_{0};
  std::size_t count_{0};
  std::size_t mask_{0};
  std::int64_t total_pushed_{0};
  std::int64_t total_popped_{0};
  std::size_t high_water_{0};
};

}  // namespace sit::runtime
