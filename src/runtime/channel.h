#pragma once
// FIFO channels ("tapes").
//
// A channel is the paper's data tape: filters push to the front and pop from
// the end, and may peek at not-yet-popped items.  The channel additionally
// remembers the *cumulative* number of items ever pushed and popped -- n(t)
// and p(t) in the paper's operational semantics -- which the sdep/messaging
// machinery reads to decide message delivery points.

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <vector>

#include "ir/filter.h"

namespace sit::runtime {

class Channel final : public ir::InTape, public ir::OutTape {
 public:
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }

  void push_item(double v) override {
    buf_.push_back(v);
    ++total_pushed_;
  }

  double pop_item() override {
    if (buf_.empty()) throw std::runtime_error("pop from empty channel");
    const double v = buf_.front();
    buf_.pop_front();
    ++total_popped_;
    return v;
  }

  double peek_item(int offset) override {
    if (offset < 0 || static_cast<std::size_t>(offset) >= buf_.size()) {
      throw std::runtime_error("peek(" + std::to_string(offset) +
                               ") beyond channel contents (" +
                               std::to_string(buf_.size()) + ")");
    }
    return buf_[static_cast<std::size_t>(offset)];
  }

  void push_many(const std::vector<double>& vs) {
    for (double v : vs) push_item(v);
  }

  // Cumulative counters: n(t) = items ever pushed, p(t) = items ever popped.
  [[nodiscard]] std::int64_t total_pushed() const { return total_pushed_; }
  [[nodiscard]] std::int64_t total_popped() const { return total_popped_; }

  // High-water mark of live items, for buffer-requirement reporting.
  void note_high_water() { high_water_ = std::max(high_water_, buf_.size()); }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

 private:
  std::deque<double> buf_;
  std::int64_t total_pushed_{0};
  std::int64_t total_popped_{0};
  std::size_t high_water_{0};
};

}  // namespace sit::runtime
