#pragma once
// Flat actor graph.
//
// The hierarchical stream graph is lowered to a flat graph of *actors*
// (filters plus explicit splitter/joiner actors) connected by *edges*
// (channels).  All scheduling, mapping, simulation, and sdep analyses run on
// this form.  Edges may carry initial items: feedback-loop back edges start
// with `delay` items from initPath.
//
// The graph has at most one external input edge and one external output edge
// (a program whose top-level stream consumes/produces data); fully closed
// source-to-sink programs have neither.

#include <string>
#include <vector>

#include "ir/graph.h"

namespace sit::runtime {

struct FlatActor {
  enum class Kind { Filter, Native, Splitter, Joiner };

  Kind kind{};
  std::string name;

  // Filter/Native: the graph node this actor was lowered from (non-owning;
  // the Executor keeps the root graph alive).
  const ir::Node* node{nullptr};

  // Splitter/Joiner configuration.
  ir::SJKind sj{ir::SJKind::RoundRobin};
  std::vector<int> weights;

  // Edge ids, in port order.  Filters have exactly one of each (or zero at
  // the graph boundary for pure sources/sinks).
  std::vector<int> in_edges;
  std::vector<int> out_edges;

  // Items consumed per firing on each input port / produced on each output
  // port.  A duplicate splitter consumes one and produces one per branch; a
  // weighted round-robin splitter consumes total weight and produces w_i.
  std::vector<int> in_rate;
  std::vector<int> out_rate;

  // Filters only: peek - pop (extra items that must be buffered beyond what a
  // firing consumes).
  int peek_extra{0};

  [[nodiscard]] bool is_filter() const {
    return kind == Kind::Filter || kind == Kind::Native;
  }
  [[nodiscard]] int pop_rate() const { return in_rate.empty() ? 0 : in_rate[0]; }
  [[nodiscard]] int push_rate() const { return out_rate.empty() ? 0 : out_rate[0]; }
};

struct FlatEdge {
  int src{-1};       // actor id, -1 = external program input
  int src_port{0};
  int dst{-1};       // actor id, -1 = external program output
  int dst_port{0};
  bool back_edge{false};  // feedback-loop back edge (carries initial items)
  std::vector<double> initial_items;
};

struct FlatGraph {
  std::vector<FlatActor> actors;
  std::vector<FlatEdge> edges;
  int input_edge{-1};   // edge whose src == -1, or -1 if none
  int output_edge{-1};  // edge whose dst == -1, or -1 if none

  // Topological order of actor ids ignoring back edges.
  [[nodiscard]] std::vector<int> topo_order() const;

  // Edges entering / leaving an actor (port order).
  [[nodiscard]] const FlatEdge& edge(int id) const { return edges[static_cast<std::size_t>(id)]; }

  [[nodiscard]] std::string describe() const;
};

// Lower a hierarchical graph.  Throws on malformed programs (use
// ir::check_or_throw first for friendlier errors).
FlatGraph flatten(const ir::NodeP& root);

}  // namespace sit::runtime
