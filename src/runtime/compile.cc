#include "runtime/compile.h"

#include <cstring>

#include "runtime/typed.h"
#include <map>
#include <set>
#include <unordered_map>

namespace sit::runtime {

using ir::BinOp;
using ir::Expr;
using ir::ExprP;
using ir::Stmt;
using ir::StmtP;
using ir::UnOp;
using ir::Value;

namespace {

// Thrown for constructs outside the bytecode subset; compile_filter catches
// it and reports a tree-interpreter fallback.
struct Unsupported {
  std::string reason;
};

[[noreturn]] void bail(std::string reason) { throw Unsupported{std::move(reason)}; }

// Temporaries are allocated 0.. during compilation and rebased above the
// persistent registers (locals/constants/loop bookkeeping) at finalize time;
// the flag bit distinguishes the two spaces until then.
constexpr std::uint16_t kTempFlag = 0x8000;

CountTag bin_tag(BinOp op) {
  switch (op) {
    case BinOp::Div:
    case BinOp::Mod:
      return CountTag::Div;
    case BinOp::Pow:
      return CountTag::Trans;
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::Min:
    case BinOp::Max:
      return CountTag::ByResult;
    // Comparisons and bit ops always yield an integer value.
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::LAnd:
    case BinOp::LOr:
    case BinOp::BAnd:
    case BinOp::BOr:
    case BinOp::BXor:
    case BinOp::Shl:
    case BinOp::Shr:
      return CountTag::IntOp;
  }
  return CountTag::None;
}

CountTag un_tag(UnOp op) {
  switch (op) {
    case UnOp::Neg:
    case UnOp::Abs:
      return CountTag::ByResult;
    case UnOp::LNot:
    case UnOp::BNot:
      return CountTag::IntOp;
    case UnOp::Sin:
    case UnOp::Cos:
    case UnOp::Tan:
    case UnOp::Exp:
    case UnOp::Log:
    case UnOp::Sqrt:
      return CountTag::Trans;
    case UnOp::Floor:
    case UnOp::Ceil:
    case UnOp::Round:
      return CountTag::Flop;
    case UnOp::ToInt:
    case UnOp::ToFloat:
      return CountTag::None;
  }
  return CountTag::None;
}

class FnCompiler {
 public:
  FnCompiler(const std::unordered_map<std::string, std::uint16_t>& scalars,
             const std::unordered_map<std::string, std::uint16_t>& arrays)
      : scalar_slot_(scalars), array_slot_(arrays) {}

  CompiledProgram compile(const StmtP& body) {
    stmt(body);
    emit({VmOp::Halt});
    finalize();
    return std::move(prog_);
  }

 private:
  // A compiled expression: the register holding its value, plus (for
  // straight-line tails) the index of the instruction that produced it so an
  // enclosing assignment can retarget it and skip a Move.
  struct ExprRes {
    std::uint16_t reg{0};
    std::int32_t tail{-1};
  };

  // ---- emission helpers -----------------------------------------------------

  std::int32_t emit(VmInstr instr) {
    prog_.code.push_back(instr);
    return static_cast<std::int32_t>(prog_.code.size()) - 1;
  }

  [[nodiscard]] std::int32_t here() const {
    return static_cast<std::int32_t>(prog_.code.size());
  }

  void patch(std::int32_t at, std::int32_t target) {
    prog_.code[static_cast<std::size_t>(at)].jump = target;
  }

  // ---- registers ------------------------------------------------------------

  std::uint16_t persistent(Value init) {
    const std::size_t i = persist_init_.size();
    if (i >= kTempFlag) bail("register file overflow");
    persist_init_.push_back(init);
    return static_cast<std::uint16_t>(i);
  }

  std::uint16_t temp() {
    const std::uint16_t t = temp_top_++;
    if (t >= kTempFlag) bail("register file overflow");
    max_temps_ = std::max(max_temps_, temp_top_);
    return static_cast<std::uint16_t>(kTempFlag | t);
  }

  std::uint16_t const_reg(const Value& v) {
    std::uint64_t bits;
    if (v.is_int()) {
      bits = static_cast<std::uint64_t>(v.as_int());
    } else {
      const double d = v.as_double();
      std::memcpy(&bits, &d, sizeof(bits));
    }
    const auto key = std::make_pair(v.is_int(), bits);
    auto it = const_pool_.find(key);
    if (it != const_pool_.end()) return it->second;
    const std::uint16_t r = persistent(v);
    const_pool_.emplace(key, r);
    return r;
  }

  std::uint16_t local(const std::string& name) {
    auto it = local_slot_.find(name);
    if (it != local_slot_.end()) return it->second;
    const std::uint16_t r = persistent(Value());
    local_slot_.emplace(name, r);
    return r;
  }

  // Store an expression result into a persistent register, retargeting the
  // producing instruction when that is provably equivalent (the producer is
  // the straight-line tail writing a temp nothing else reads).
  void move_into(std::uint16_t dst, const ExprRes& v) {
    if (v.tail >= 0 && (v.reg & kTempFlag) &&
        prog_.code[static_cast<std::size_t>(v.tail)].dst == v.reg) {
      prog_.code[static_cast<std::size_t>(v.tail)].dst = dst;
      return;
    }
    emit({VmOp::Move, 0, CountTag::None, dst, v.reg});
  }

  // ---- expressions ----------------------------------------------------------

  ExprRes expr(const ExprP& e) {
    switch (e->kind) {
      case Expr::Kind::IntConst:
        return {const_reg(Value(e->ival)), -1};
      case Expr::Kind::FloatConst:
        return {const_reg(Value(e->fval)), -1};
      case Expr::Kind::Var: {
        if (assigned_.count(e->name) != 0) return {local_slot_.at(e->name), -1};
        auto s = scalar_slot_.find(e->name);
        if (s != scalar_slot_.end()) {
          const std::uint16_t r = temp();
          const std::int32_t i =
              emit({VmOp::LoadScalar, 0, CountTag::Mem, r, s->second});
          return {r, i};
        }
        bail("read of undefined or possibly-unassigned variable '" + e->name +
             "'");
      }
      case Expr::Kind::ArrayRef: {
        auto a = array_slot_.find(e->name);
        if (a == array_slot_.end()) bail("undefined array '" + e->name + "'");
        const ExprRes idx = expr(e->a);
        const std::uint16_t r = temp();
        const std::int32_t i =
            emit({VmOp::LoadElem, 0, CountTag::Mem, r, a->second, idx.reg});
        return {r, i};
      }
      case Expr::Kind::Peek: {
        const ExprRes off = expr(e->a);
        const std::uint16_t r = temp();
        const std::int32_t i =
            emit({VmOp::Peek, 0, CountTag::Channel, r, off.reg});
        return {r, i};
      }
      case Expr::Kind::Pop: {
        const std::uint16_t r = temp();
        const std::int32_t i = emit({VmOp::Pop, 0, CountTag::Channel, r});
        return {r, i};
      }
      case Expr::Kind::Bin: {
        if (e->bop == BinOp::LAnd || e->bop == BinOp::LOr) {
          return short_circuit(e);
        }
        const ExprRes a = expr(e->a);
        const ExprRes b = expr(e->b);
        const std::uint16_t r = temp();
        const std::int32_t i =
            emit({VmOp::Bin, static_cast<std::uint8_t>(e->bop),
                  bin_tag(e->bop), r, a.reg, b.reg});
        return {r, i};
      }
      case Expr::Kind::Un: {
        const ExprRes a = expr(e->a);
        const std::uint16_t r = temp();
        const std::int32_t i = emit({VmOp::Un, static_cast<std::uint8_t>(e->uop),
                                     un_tag(e->uop), r, a.reg});
        return {r, i};
      }
      case Expr::Kind::Cond: {
        // The tree interpreter counts one int op for the selection, then
        // evaluates only the taken branch.
        emit({VmOp::Tally, 1, CountTag::IntOp});
        const ExprRes c = expr(e->a);
        const std::uint16_t dest = temp();
        const std::int32_t jf = emit({VmOp::JmpIfFalse, 0, CountTag::None, 0,
                                      c.reg});
        move_into(dest, expr(e->b));
        const std::int32_t j = emit({VmOp::Jmp});
        patch(jf, here());
        move_into(dest, expr(e->c));
        patch(j, here());
        return {dest, -1};
      }
    }
    bail("unhandled expr kind");
  }

  // LAnd / LOr with the tree interpreter's exact semantics: one int op
  // counted up front, right operand evaluated only when needed, result is a
  // bool-valued (integer) Value.
  ExprRes short_circuit(const ExprP& e) {
    const bool is_and = e->bop == BinOp::LAnd;
    emit({VmOp::Tally, 1, CountTag::IntOp});
    const ExprRes a = expr(e->a);
    const std::uint16_t dest = temp();
    const std::int32_t jshort =
        emit({is_and ? VmOp::JmpIfFalse : VmOp::JmpIfTrue, 0, CountTag::None, 0,
              a.reg});
    const ExprRes b = expr(e->b);
    emit({VmOp::Truthy, 0, CountTag::None, dest, b.reg});
    const std::int32_t j = emit({VmOp::Jmp});
    patch(jshort, here());
    emit({VmOp::Move, 0, CountTag::None, dest, const_reg(Value(!is_and))});
    patch(j, here());
    return {dest, -1};
  }

  // ---- statements -----------------------------------------------------------

  void stmt(const StmtP& s) {
    if (!s) return;
    temp_top_ = 0;
    switch (s->kind) {
      case Stmt::Kind::Block:
        for (const auto& c : s->stmts) stmt(c);
        break;
      case Stmt::Kind::Assign: {
        const ExprRes v = expr(s->value);
        auto sc = scalar_slot_.find(s->name);
        if (sc != scalar_slot_.end()) {
          emit({VmOp::StoreScalar, 0, CountTag::Mem, v.reg, sc->second});
        } else {
          move_into(local(s->name), v);
          assigned_.insert(s->name);
        }
        break;
      }
      case Stmt::Kind::ArrayAssign: {
        auto a = array_slot_.find(s->name);
        if (a == array_slot_.end()) bail("undefined array '" + s->name + "'");
        const ExprRes idx = expr(s->index);
        const ExprRes val = expr(s->value);
        emit({VmOp::StoreElem, 0, CountTag::Mem, val.reg, a->second, idx.reg});
        break;
      }
      case Stmt::Kind::Push: {
        const ExprRes v = expr(s->value);
        emit({VmOp::Push, 0, CountTag::Channel, v.reg});
        break;
      }
      case Stmt::Kind::PopN: {
        const ExprRes n = expr(s->index);
        emit({VmOp::PopN, 0, CountTag::None, 0, n.reg});
        break;
      }
      case Stmt::Kind::For: {
        // The loop variable is an invocation-local rebound from a hidden
        // induction register each iteration (body assignments to it cannot
        // change the trip count, exactly as in the tree interpreter).  A
        // loop variable shadowing a state scalar would make reads after the
        // loop depend on the trip count; out of the subset.
        if (scalar_slot_.count(s->name) != 0) {
          bail("for variable '" + s->name + "' shadows a state scalar");
        }
        const std::uint16_t ri = persistent(Value());
        const std::uint16_t rhi = persistent(Value());
        const std::uint16_t rstep = persistent(Value());
        // Bounds coerce through as_int() exactly as in the tree interpreter
        // (uncounted, like any Value coercion).
        const auto int_into = [&](std::uint16_t dst, const ExprRes& v) {
          emit({VmOp::Un, static_cast<std::uint8_t>(UnOp::ToInt),
                CountTag::None, dst, v.reg});
        };
        int_into(ri, expr(s->lo));
        int_into(rhi, expr(s->hi));
        int_into(rstep, s->step ? expr(s->step)
                                : ExprRes{const_reg(Value(std::int64_t{1})), -1});
        emit({VmOp::CheckStep, 0, CountTag::None, 0, rstep});
        const std::int32_t ltest = here();
        const std::int32_t jge =
            emit({VmOp::JmpIfGe, 0, CountTag::None, 0, ri, rhi});
        emit({VmOp::Tally, 2, CountTag::IntOp});  // increment + bound compare
        const std::uint16_t slot = local(s->name);
        emit({VmOp::Move, 0, CountTag::None, slot, ri});
        const std::set<std::string> snapshot = assigned_;
        assigned_.insert(s->name);
        stmt(s->body);
        emit({VmOp::ForInc, 0, CountTag::None, ri, rstep});
        VmInstr back{VmOp::Jmp};
        back.jump = ltest;
        emit(back);
        patch(jge, here());
        // Zero-trip loops leave body assignments (and a previously-unset
        // loop variable) undefined.
        assigned_ = snapshot;
        break;
      }
      case Stmt::Kind::If: {
        emit({VmOp::Tally, 1, CountTag::IntOp});
        const ExprRes c = expr(s->cond);
        const std::int32_t jf =
            emit({VmOp::JmpIfFalse, 0, CountTag::None, 0, c.reg});
        const std::set<std::string> snapshot = assigned_;
        stmt(s->body);
        if (s->elseBody) {
          const std::set<std::string> after_then = assigned_;
          const std::int32_t j = emit({VmOp::Jmp});
          patch(jf, here());
          assigned_ = snapshot;
          stmt(s->elseBody);
          // Definitely assigned only if both branches assign.
          std::set<std::string> both;
          for (const auto& n : after_then) {
            if (assigned_.count(n) != 0) both.insert(n);
          }
          assigned_ = std::move(both);
          patch(j, here());
        } else {
          patch(jf, here());
          assigned_ = snapshot;
        }
        break;
      }
      case Stmt::Kind::Send: {
        SendSite site;
        site.portal = s->name;
        site.method = s->method;
        site.lat_min = s->latMin;
        site.lat_max = s->latMax;
        for (const auto& a : s->args) site.arg_regs.push_back(expr(a).reg);
        const auto idx = static_cast<std::uint16_t>(prog_.sends.size());
        prog_.sends.push_back(std::move(site));
        emit({VmOp::Send, 0, CountTag::None, 0, idx});
        break;
      }
    }
  }

  // Rebase flagged temporaries above the persistent registers and build the
  // register template.
  void finalize() {
    const std::size_t n_persist = persist_init_.size();
    if (n_persist + max_temps_ >= kTempFlag) bail("register file overflow");
    const auto rebase = [&](std::uint16_t& r) {
      if (r & kTempFlag) {
        r = static_cast<std::uint16_t>(n_persist + (r & ~kTempFlag));
      }
    };
    for (VmInstr& I : prog_.code) {
      switch (I.op) {
        case VmOp::LoadScalar:
        case VmOp::StoreScalar:
          rebase(I.dst);  // `a` is a state slot, not a register
          break;
        case VmOp::LoadElem:
        case VmOp::StoreElem:
          rebase(I.dst);  // `a` is a state slot
          rebase(I.b);
          break;
        case VmOp::Send:
        case VmOp::Tally:
        case VmOp::Halt:
        case VmOp::Jmp:
          break;  // no register operands (`a` of Send is a site index)
        default:
          rebase(I.dst);
          rebase(I.a);
          rebase(I.b);
          break;
      }
    }
    for (SendSite& s : prog_.sends) {
      for (std::uint16_t& r : s.arg_regs) rebase(r);
    }
    prog_.reg_init = std::move(persist_init_);
    prog_.reg_init.resize(n_persist + max_temps_);
  }

  const std::unordered_map<std::string, std::uint16_t>& scalar_slot_;
  const std::unordered_map<std::string, std::uint16_t>& array_slot_;
  std::unordered_map<std::string, std::uint16_t> local_slot_;
  std::map<std::pair<bool, std::uint64_t>, std::uint16_t> const_pool_;
  std::set<std::string> assigned_;  // definitely-assigned locals
  std::vector<Value> persist_init_;
  std::uint16_t temp_top_{0};
  std::uint16_t max_temps_{0};
  CompiledProgram prog_;
};

}  // namespace

CompiledFilterP compile_filter(const ir::FilterSpec& spec, std::string* reason) {
  try {
    auto out = std::make_shared<CompiledFilter>();
    out->name = spec.name;
    out->peek_window = std::max<std::int64_t>(spec.peek, spec.pop);
    std::unordered_map<std::string, std::uint16_t> scalars, arrays;
    for (const auto& d : spec.state) {
      if (d.is_array) {
        if (arrays.emplace(d.name, static_cast<std::uint16_t>(
                                       out->array_slots.size()))
                .second) {
          out->array_slots.push_back(d.name);
        }
      } else if (scalars
                     .emplace(d.name,
                              static_cast<std::uint16_t>(out->scalar_slots.size()))
                     .second) {
        out->scalar_slots.push_back(d.name);
      }
    }
    {
      FnCompiler fc(scalars, arrays);
      out->work = fc.compile(spec.work);
    }
    if (spec.init) {
      // Init is compiled best-effort: a filter whose init falls outside the
      // subset still gets the VM for its (hot) work function, and the caller
      // runs the tree interpreter for init instead.
      try {
        FnCompiler fc(scalars, arrays);
        out->init = fc.compile(spec.init);
        out->has_init = true;
      } catch (const Unsupported&) {
        out->has_init = false;
      }
    }
    return out;
  } catch (const Unsupported& u) {
    if (reason) *reason = u.reason;
    return nullptr;
  }
}

TypedFilterP typed_compile(const ir::FilterSpec& spec,
                           const CompiledFilterP& base,
                           const FilterState& state, std::string* reason) {
  if (!base) return nullptr;
  // Teleport handlers may retag any state slot between firings, which would
  // invalidate the inferred classes; Send argument marshaling builds Values
  // from mixed registers.  Both stay on the tagged path.
  if (!spec.handlers.empty()) {
    if (reason) *reason = "has-handlers";
    return nullptr;
  }
  if (!base->work.sends.empty()) {
    if (reason) *reason = "teleport-send";
    return nullptr;
  }

  // Re-express the VM program as the fused instruction set so typed_lower
  // sees one vocabulary.  The translation is 1:1 (indices and jump targets
  // carry over unchanged); only the channel ops are renamed.
  std::vector<FInstr> code;
  code.reserve(base->work.code.size());
  for (const VmInstr& v : base->work.code) {
    FInstr f;
    f.sub = v.sub;
    f.count = v.count;
    f.dst = v.dst;
    f.a = v.a;
    f.b = v.b;
    f.jump = v.jump;
    switch (v.op) {
      case VmOp::Move: f.op = FOp::Move; break;
      case VmOp::LoadScalar: f.op = FOp::LoadScalar; break;
      case VmOp::StoreScalar: f.op = FOp::StoreScalar; break;
      case VmOp::LoadElem: f.op = FOp::LoadElem; break;
      case VmOp::StoreElem: f.op = FOp::StoreElem; break;
      case VmOp::Peek: f.op = FOp::RPeek; break;
      case VmOp::Pop: f.op = FOp::RPop; break;
      case VmOp::PopN: f.op = FOp::RPopN; break;
      case VmOp::Push: f.op = FOp::RPush; break;
      case VmOp::Bin: f.op = FOp::Bin; break;
      case VmOp::Un: f.op = FOp::Un; break;
      case VmOp::Truthy: f.op = FOp::Truthy; break;
      case VmOp::Jmp: f.op = FOp::Jmp; break;
      case VmOp::JmpIfFalse: f.op = FOp::JmpIfFalse; break;
      case VmOp::JmpIfTrue: f.op = FOp::JmpIfTrue; break;
      case VmOp::JmpIfGe: f.op = FOp::JmpIfGe; break;
      case VmOp::CheckStep: f.op = FOp::CheckStep; break;
      case VmOp::ForInc: f.op = FOp::ForInc; break;
      case VmOp::Tally: f.op = FOp::Tally; break;
      case VmOp::Halt: f.op = FOp::Halt; break;
      case VmOp::Send:
        if (reason) *reason = "teleport-send";
        return nullptr;
    }
    code.push_back(f);
  }

  TypedLowerInput in;
  in.code = &code;
  in.num_regs = base->work.reg_init.size();
  in.reg_init = base->work.reg_init;
  in.scalar_names = &base->scalar_slots;
  in.array_names = &base->array_slots;
  in.loop = false;  // VM registers are re-templated every firing
  // Seed state classes from the *current* (post-init) tags: init has already
  // run by the time specialization happens, so the bound state's tags are
  // the ground truth the classes must be consistent with.
  in.scalar_seed.reserve(base->scalar_slots.size());
  for (const auto& name : base->scalar_slots) {
    in.scalar_seed.push_back(value_tag(state.scalars.at(name)));
  }
  in.array_seed.reserve(base->array_slots.size());
  for (const auto& name : base->array_slots) {
    const auto& arr = state.arrays.at(name);
    Tag t = arr.empty() ? Tag::Int : value_tag(arr.front());
    for (const auto& v : arr) t = join_tag(t, value_tag(v));
    in.array_seed.push_back(t);
  }

  auto out = std::make_shared<TypedFilter>();
  out->base = base;
  if (!typed_lower(in, &out->work, reason)) return nullptr;
  return out;
}

}  // namespace sit::runtime
