#pragma once
// AST -> bytecode compiler for the work-function VM (vm.h).
//
// Runs once per filter, at executor construction: every scalar, array, and
// invocation-local name is resolved to an integer slot, constants are pooled
// into preloaded registers, short-circuit operators and loops are lowered to
// jumps, and per-instruction OpCounts costs are fixed.  The compiler is
// deliberately conservative: any construct whose runtime behaviour it cannot
// prove equivalent to the tree interpreter (e.g. a read of a local that only
// some paths assign, or a loop variable shadowing a state scalar) makes it
// return nullptr, and the caller falls back to the tree interpreter for that
// filter -- per-filter, so one exotic filter never slows the whole graph.

#include <string>

#include "ir/filter.h"
#include "runtime/vm.h"

namespace sit::runtime {

// Compile `spec`'s work and init functions.  Returns nullptr (with `reason`
// filled, if non-null) when the filter is outside the bytecode subset.
CompiledFilterP compile_filter(const ir::FilterSpec& spec,
                               std::string* reason = nullptr);

}  // namespace sit::runtime
