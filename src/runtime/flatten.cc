#include <queue>
#include <sstream>
#include <stdexcept>

#include "runtime/flatgraph.h"

namespace sit::runtime {

using ir::Node;
using ir::NodeP;
using ir::SJKind;

namespace {

// Where a lowered subtree plugs into its surroundings.  An actor/port of -1
// means the subtree has no input (pure source) or no output (pure sink).
struct Ends {
  int in_actor{-1};
  int in_port{-1};
  int out_actor{-1};
  int out_port{-1};
};

class Lowering {
 public:
  FlatGraph finish(Ends top) {
    if (top.in_actor >= 0) {
      g_.input_edge = new_edge(-1, 0, top.in_actor, top.in_port);
    }
    if (top.out_actor >= 0) {
      g_.output_edge = new_edge(top.out_actor, top.out_port, -1, 0);
    }
    return std::move(g_);
  }

  Ends lower(const NodeP& n) {
    switch (n->kind) {
      case Node::Kind::Filter: {
        const auto& f = n->filter;
        return leaf(n, f.name, f.peek, f.pop, f.push, FlatActor::Kind::Filter);
      }
      case Node::Kind::Native: {
        const auto& f = n->native;
        return leaf(n, f.name, f.peek, f.pop, f.push, FlatActor::Kind::Native);
      }
      case Node::Kind::Pipeline:
        return lower_pipeline(n);
      case Node::Kind::SplitJoin:
        return lower_splitjoin(n);
      case Node::Kind::FeedbackLoop:
        return lower_feedback(n);
    }
    throw std::logic_error("unreachable");
  }

 private:
  int new_actor(FlatActor a) {
    g_.actors.push_back(std::move(a));
    return static_cast<int>(g_.actors.size()) - 1;
  }

  int new_edge(int src, int sport, int dst, int dport, bool back = false,
               std::vector<double> initial = {}) {
    FlatEdge e;
    e.src = src;
    e.src_port = sport;
    e.dst = dst;
    e.dst_port = dport;
    e.back_edge = back;
    e.initial_items = std::move(initial);
    const int id = static_cast<int>(g_.edges.size());
    g_.edges.push_back(std::move(e));
    if (src >= 0) {
      auto& ports = g_.actors[static_cast<std::size_t>(src)].out_edges;
      if (static_cast<int>(ports.size()) <= sport) ports.resize(static_cast<std::size_t>(sport) + 1, -1);
      ports[static_cast<std::size_t>(sport)] = id;
    }
    if (dst >= 0) {
      auto& ports = g_.actors[static_cast<std::size_t>(dst)].in_edges;
      if (static_cast<int>(ports.size()) <= dport) ports.resize(static_cast<std::size_t>(dport) + 1, -1);
      ports[static_cast<std::size_t>(dport)] = id;
    }
    return id;
  }

  Ends leaf(const NodeP& n, const std::string& name, int peek, int pop, int push,
            FlatActor::Kind kind) {
    FlatActor a;
    a.kind = kind;
    a.name = name;
    a.node = n.get();
    const bool has_in = pop > 0 || peek > 0;
    const bool has_out = push > 0;
    if (has_in) {
      a.in_rate = {pop};
      a.peek_extra = peek - pop;
    }
    if (has_out) a.out_rate = {push};
    const int id = new_actor(std::move(a));
    Ends e;
    if (has_in) {
      e.in_actor = id;
      e.in_port = 0;
    }
    if (has_out) {
      e.out_actor = id;
      e.out_port = 0;
    }
    return e;
  }

  Ends lower_pipeline(const NodeP& n) {
    Ends result;
    Ends prev;
    bool first = true;
    for (const auto& c : n->children) {
      const Ends cur = lower(c);
      if (first) {
        result.in_actor = cur.in_actor;
        result.in_port = cur.in_port;
        first = false;
      } else {
        const bool up = prev.out_actor >= 0;
        const bool down = cur.in_actor >= 0;
        if (up != down) {
          throw std::runtime_error("pipeline '" + n->name +
                                   "': producer/consumer mismatch between stages");
        }
        if (up) {
          new_edge(prev.out_actor, prev.out_port, cur.in_actor, cur.in_port);
        }
      }
      prev = cur;
    }
    result.out_actor = prev.out_actor;
    result.out_port = prev.out_port;
    return result;
  }

  Ends lower_splitjoin(const NodeP& n) {
    const std::size_t k = n->children.size();
    std::vector<Ends> kids;
    kids.reserve(k);
    for (const auto& c : n->children) kids.push_back(lower(c));

    Ends result;

    // Splitter.
    if (n->split.kind != SJKind::Null) {
      FlatActor s;
      s.kind = FlatActor::Kind::Splitter;
      s.name = n->name + ".split";
      s.sj = n->split.kind;
      if (n->split.kind == SJKind::Duplicate) {
        s.in_rate = {1};
        s.out_rate.assign(k, 1);
      } else {
        s.weights = n->split.weights;
        s.in_rate = {n->split.total_weight()};
        s.out_rate.assign(n->split.weights.begin(), n->split.weights.end());
      }
      const int sid = new_actor(std::move(s));
      for (std::size_t i = 0; i < k; ++i) {
        const int w = (n->split.kind == SJKind::Duplicate)
                          ? 1
                          : n->split.weights[i];
        const bool branch_has_in = kids[i].in_actor >= 0;
        if (w > 0 && !branch_has_in) {
          throw std::runtime_error("splitjoin '" + n->name + "': branch " +
                                   std::to_string(i) +
                                   " consumes nothing but splitter weight > 0");
        }
        if (w == 0 && branch_has_in) {
          throw std::runtime_error("splitjoin '" + n->name + "': branch " +
                                   std::to_string(i) +
                                   " consumes input but splitter weight == 0");
        }
        if (w > 0) {
          new_edge(sid, static_cast<int>(i), kids[i].in_actor, kids[i].in_port);
        }
      }
      result.in_actor = sid;
      result.in_port = 0;
    } else {
      for (std::size_t i = 0; i < k; ++i) {
        if (kids[i].in_actor >= 0) {
          throw std::runtime_error("splitjoin '" + n->name +
                                   "': null splitter with consuming branch");
        }
      }
    }

    // Joiner.
    if (n->join.kind != SJKind::Null) {
      FlatActor j;
      j.kind = FlatActor::Kind::Joiner;
      j.name = n->name + ".join";
      j.sj = n->join.kind;
      j.weights = n->join.weights;
      j.in_rate.assign(n->join.weights.begin(), n->join.weights.end());
      j.out_rate = {n->join.total_weight()};
      const int jid = new_actor(std::move(j));
      for (std::size_t i = 0; i < k; ++i) {
        const int w = n->join.weights[i];
        const bool branch_has_out = kids[i].out_actor >= 0;
        if (w > 0 && !branch_has_out) {
          throw std::runtime_error("splitjoin '" + n->name + "': branch " +
                                   std::to_string(i) +
                                   " produces nothing but joiner weight > 0");
        }
        if (w == 0 && branch_has_out) {
          throw std::runtime_error("splitjoin '" + n->name + "': branch " +
                                   std::to_string(i) +
                                   " produces output but joiner weight == 0");
        }
        if (w > 0) {
          new_edge(kids[i].out_actor, kids[i].out_port, jid, static_cast<int>(i));
        }
      }
      result.out_actor = jid;
      result.out_port = 0;
    } else {
      for (std::size_t i = 0; i < k; ++i) {
        if (kids[i].out_actor >= 0) {
          throw std::runtime_error("splitjoin '" + n->name +
                                   "': null joiner with producing branch");
        }
      }
    }

    return result;
  }

  Ends lower_feedback(const NodeP& n) {
    // children[0] = body, children[1] = loop; the back edge from the loop's
    // output into the joiner starts with `delay` items from initPath.
    FlatActor j;
    j.kind = FlatActor::Kind::Joiner;
    j.name = n->name + ".fbjoin";
    j.sj = n->join.kind;
    j.weights = n->join.weights;
    j.in_rate.assign(n->join.weights.begin(), n->join.weights.end());
    j.out_rate = {n->join.total_weight()};
    const int jid = new_actor(std::move(j));

    const Ends body = lower(n->children[0]);
    if (body.in_actor < 0 || body.out_actor < 0) {
      throw std::runtime_error("feedback '" + n->name +
                               "': body must consume and produce");
    }
    new_edge(jid, 0, body.in_actor, body.in_port);

    FlatActor s;
    s.kind = FlatActor::Kind::Splitter;
    s.name = n->name + ".fbsplit";
    s.sj = n->split.kind;
    if (n->split.kind == SJKind::Duplicate) {
      s.in_rate = {1};
      s.out_rate = {1, 1};
    } else {
      s.weights = n->split.weights;
      s.in_rate = {n->split.total_weight()};
      s.out_rate.assign(n->split.weights.begin(), n->split.weights.end());
    }
    const int sid = new_actor(std::move(s));
    new_edge(body.out_actor, body.out_port, sid, 0);

    const Ends loop = lower(n->children[1]);
    if (loop.in_actor < 0 || loop.out_actor < 0) {
      throw std::runtime_error("feedback '" + n->name +
                               "': loop must consume and produce");
    }
    new_edge(sid, 1, loop.in_actor, loop.in_port);
    new_edge(loop.out_actor, loop.out_port, jid, 1, /*back=*/true, n->init_path);

    Ends result;
    result.in_actor = jid;
    result.in_port = 0;
    result.out_actor = sid;
    result.out_port = 0;
    return result;
  }

  FlatGraph g_;
};

}  // namespace

FlatGraph flatten(const NodeP& root) {
  Lowering lw;
  Ends top = lw.lower(root);
  return lw.finish(top);
}

std::vector<int> FlatGraph::topo_order() const {
  const std::size_t n = actors.size();
  std::vector<int> indeg(n, 0);
  for (const auto& e : edges) {
    if (e.src >= 0 && e.dst >= 0 && !e.back_edge) {
      ++indeg[static_cast<std::size_t>(e.dst)];
    }
  }
  std::queue<int> q;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) q.push(static_cast<int>(i));
  }
  std::vector<int> order;
  order.reserve(n);
  while (!q.empty()) {
    const int a = q.front();
    q.pop();
    order.push_back(a);
    for (int eid : actors[static_cast<std::size_t>(a)].out_edges) {
      if (eid < 0) continue;
      const auto& e = edges[static_cast<std::size_t>(eid)];
      if (e.dst >= 0 && !e.back_edge && --indeg[static_cast<std::size_t>(e.dst)] == 0) {
        q.push(e.dst);
      }
    }
  }
  if (order.size() != n) {
    throw std::runtime_error("stream graph contains a cycle outside a feedback loop");
  }
  return order;
}

std::string FlatGraph::describe() const {
  std::ostringstream os;
  os << actors.size() << " actors, " << edges.size() << " edges\n";
  for (std::size_t i = 0; i < actors.size(); ++i) {
    const auto& a = actors[i];
    os << "  [" << i << "] " << a.name << " in=(";
    for (std::size_t p = 0; p < a.in_rate.size(); ++p) os << (p ? "," : "") << a.in_rate[p];
    os << ") out=(";
    for (std::size_t p = 0; p < a.out_rate.size(); ++p) os << (p ? "," : "") << a.out_rate[p];
    os << ")";
    if (a.peek_extra > 0) os << " peek+" << a.peek_extra;
    os << "\n";
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& e = edges[i];
    os << "  e" << i << ": " << e.src << ":" << e.src_port << " -> " << e.dst
       << ":" << e.dst_port;
    if (e.back_edge) os << " (back, " << e.initial_items.size() << " initial)";
    os << "\n";
  }
  return os.str();
}

}  // namespace sit::runtime
