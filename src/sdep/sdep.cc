#include "sdep/sdep.h"

#include <stdexcept>

namespace sit::sdep {

using runtime::FlatActor;
using runtime::FlatGraph;

namespace {

// Count-only pull simulator: fires actors minimally so that a designated
// actor can fire; this realizes the paper's "information wavefront" exactly.
class PullSim {
 public:
  explicit PullSim(const FlatGraph& g) : g_(g) {
    level_.resize(g.edges.size());
    for (std::size_t i = 0; i < g.edges.size(); ++i) {
      level_[i] = static_cast<std::int64_t>(g.edges[i].initial_items.size());
    }
    fired_.assign(g.actors.size(), 0);
  }

  // Fire `a` once, recursively pulling minimal producer firings first.
  void fire_min(int a, int depth = 0) {
    if (depth > 1 << 20) {
      throw std::runtime_error("pull simulation does not terminate (deadlock)");
    }
    const FlatActor& act = g_.actors[static_cast<std::size_t>(a)];
    for (std::size_t p = 0; p < act.in_edges.size(); ++p) {
      const int eid = act.in_edges[p];
      if (eid < 0) continue;
      const auto& e = g_.edges[static_cast<std::size_t>(eid)];
      if (e.src < 0) continue;  // external input is unbounded
      std::int64_t want = act.in_rate[p];
      if (act.is_filter()) want += act.peek_extra;
      while (level_[static_cast<std::size_t>(eid)] < want) {
        fire_min(e.src, depth + 1);
      }
    }
    // Consume and produce.
    for (std::size_t p = 0; p < act.in_edges.size(); ++p) {
      const int eid = act.in_edges[p];
      if (eid < 0) continue;
      if (g_.edges[static_cast<std::size_t>(eid)].src < 0) continue;
      level_[static_cast<std::size_t>(eid)] -= act.in_rate[p];
    }
    for (std::size_t p = 0; p < act.out_edges.size(); ++p) {
      const int eid = act.out_edges[p];
      if (eid < 0) continue;
      if (g_.edges[static_cast<std::size_t>(eid)].dst < 0) continue;
      level_[static_cast<std::size_t>(eid)] += act.out_rate[p];
    }
    ++fired_[static_cast<std::size_t>(a)];
  }

  [[nodiscard]] const std::vector<std::int64_t>& fired() const { return fired_; }

 private:
  const FlatGraph& g_;
  std::vector<std::int64_t> level_;
  std::vector<std::int64_t> fired_;
};

}  // namespace

SdepAnalysis::SdepAnalysis(const FlatGraph& g)
    : g_(g), sched_(sched::make_schedule(g)) {
  const std::size_t n = g.actors.size();
  reach_.assign(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) reach_[i][i] = true;
  // Transitive closure over all edges (including back edges: data flows
  // around the loop).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& e : g.edges) {
      if (e.src < 0 || e.dst < 0) continue;
      const auto s = static_cast<std::size_t>(e.src);
      const auto d = static_cast<std::size_t>(e.dst);
      for (std::size_t i = 0; i < n; ++i) {
        if (reach_[i][s] && !reach_[i][d]) {
          reach_[i][d] = true;
          changed = true;
        }
      }
    }
  }
  table_.resize(n);
}

bool SdepAnalysis::is_upstream_of(int a, int b) const {
  return reach_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

void SdepAnalysis::build_table(int d) const {
  auto& tab = table_[static_cast<std::size_t>(d)];
  if (!tab.empty()) return;
  PullSim sim(g_);
  const std::int64_t period = sched_.reps[static_cast<std::size_t>(d)];
  const std::int64_t rows = 2 * period;
  tab.reserve(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) {
    sim.fire_min(d);
    tab.push_back(sim.fired());
  }
}

std::int64_t SdepAnalysis::sdep(int upstream, int downstream,
                                std::int64_t n) const {
  if (!is_upstream_of(upstream, downstream)) {
    throw std::invalid_argument("sdep: actors are not on a directed path");
  }
  if (n <= 0) return 0;
  build_table(downstream);
  const auto& tab = table_[static_cast<std::size_t>(downstream)];
  const std::int64_t period = sched_.reps[static_cast<std::size_t>(downstream)];
  const std::int64_t up_period = sched_.reps[static_cast<std::size_t>(upstream)];
  // Use the second period for extrapolation (the first may include the
  // initialization transient).
  if (n <= static_cast<std::int64_t>(tab.size())) {
    return tab[static_cast<std::size_t>(n - 1)][static_cast<std::size_t>(upstream)];
  }
  // n = base + k*period with base in (period, 2*period].
  std::int64_t k = (n - period - 1) / period;
  const std::int64_t base = n - k * period;
  return tab[static_cast<std::size_t>(base - 1)][static_cast<std::size_t>(upstream)] +
         k * up_period;
}

std::int64_t SdepAnalysis::max_firings(int upstream, int downstream,
                                       std::int64_t m) const {
  // Largest n with sdep(n) <= m; sdep is nondecreasing, so binary search.
  std::int64_t lo = 0;
  std::int64_t hi = 1;
  while (sdep(upstream, downstream, hi) <= m) {
    hi *= 2;
    if (hi > (std::int64_t{1} << 40)) break;
  }
  while (lo < hi) {
    const std::int64_t mid = (lo + hi + 1) / 2;
    if (sdep(upstream, downstream, mid) <= m) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

// ---- closed forms ---------------------------------------------------------------

std::int64_t filter_max_transfer(int peek, int pop, int push, std::int64_t x) {
  const std::int64_t extra = peek - pop;
  if (x < extra) return 0;
  return static_cast<std::int64_t>(push) * ((x - extra) / pop);
}

std::int64_t filter_min_transfer(int peek, int pop, int push, std::int64_t x) {
  if (x <= 0) return 0;
  const std::int64_t fires = (x + push - 1) / push;
  return fires * pop + (peek - pop);
}

// ---- verification -----------------------------------------------------------------

std::vector<LoopCheck> check_feedback_loops(const FlatGraph& g) {
  std::vector<LoopCheck> out;
  for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
    const auto& back = g.edges[ei];
    if (!back.back_edge) continue;
    LoopCheck chk;
    chk.loop_name = g.actors[static_cast<std::size_t>(back.dst)].name;
    // The joiner consumes `cons` items from the back edge per steady state
    // and the loop produces `prod`; the balance equations guarantee equality
    // in a schedulable graph, so deadlock reduces to: can the init epoch +
    // one steady state complete given only `delay` initial items?  We reuse
    // the scheduler's sweep, which throws on deadlock.
    try {
      (void)sched::make_schedule(g);
    } catch (const std::exception&) {
      chk.deadlock = true;
    }
    // Overflow: net growth of the back edge per steady state must be zero.
    const auto s_ok = [&]() -> bool {
      try {
        const auto s = sched::make_schedule(g);
        const auto& src_a = g.actors[static_cast<std::size_t>(back.src)];
        const auto& dst_a = g.actors[static_cast<std::size_t>(back.dst)];
        std::int64_t prod = 0, cons = 0;
        for (std::size_t p = 0; p < src_a.out_edges.size(); ++p) {
          if (src_a.out_edges[p] == static_cast<int>(ei)) {
            prod = s.reps[static_cast<std::size_t>(back.src)] * src_a.out_rate[p];
          }
        }
        for (std::size_t p = 0; p < dst_a.in_edges.size(); ++p) {
          if (dst_a.in_edges[p] == static_cast<int>(ei)) {
            cons = s.reps[static_cast<std::size_t>(back.dst)] * dst_a.in_rate[p];
          }
        }
        return prod == cons;
      } catch (const std::exception&) {
        return true;  // deadlock already reported
      }
    }();
    chk.overflow = !s_ok;
    out.push_back(chk);
  }
  return out;
}

std::vector<std::string> check_buffer_bounds(const FlatGraph& g,
                                             std::int64_t limit) {
  std::vector<std::string> out;
  try {
    const auto s = sched::make_schedule(g);
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      if (s.buffer_bound[e] > limit) {
        const std::string src =
            g.edges[e].src >= 0 ? g.actors[static_cast<std::size_t>(g.edges[e].src)].name
                                : "<input>";
        const std::string dst =
            g.edges[e].dst >= 0 ? g.actors[static_cast<std::size_t>(g.edges[e].dst)].name
                                : "<output>";
        out.push_back(src + " -> " + dst + " needs " +
                      std::to_string(s.buffer_bound[e]) + " items");
      }
    }
  } catch (const std::exception& ex) {
    out.push_back(std::string("unschedulable: ") + ex.what());
  }
  return out;
}

}  // namespace sit::sdep
