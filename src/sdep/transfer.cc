#include "sdep/transfer.h"

#include <algorithm>
#include <vector>

#include "sdep/sdep.h"

namespace sit::sdep {

TapeFn compose_max(TapeFn upstream, TapeFn downstream) {
  return [up = std::move(upstream), down = std::move(downstream)](std::int64_t x) {
    return down(up(x));
  };
}

TapeFn compose_min(TapeFn upstream, TapeFn downstream) {
  // Reversed order: given x items on the far output, the near-side demand is
  // up(down(x)) (paper eq. 2, second line).
  return [up = std::move(upstream), down = std::move(downstream)](std::int64_t x) {
    return up(down(x));
  };
}

TapeFn filter_max_fn(int peek, int pop, int push) {
  return [=](std::int64_t x) { return filter_max_transfer(peek, pop, push, x); };
}

TapeFn filter_min_fn(int peek, int pop, int push) {
  return [=](std::int64_t x) { return filter_min_transfer(peek, pop, push, x); };
}

std::int64_t rr_split_max(int port, std::int64_t x) {
  if (x <= 0) return 0;
  return port == 0 ? (x + 1) / 2 : x / 2;
}

std::int64_t rr_split_min(std::int64_t x1, std::int64_t x2) {
  // Erratum fix: both outputs' demands must be satisfied simultaneously, so
  // the input requirement is the max (the paper's draft wrote MIN).
  const std::int64_t need1 = x1 > 0 ? 2 * x1 - 1 : 0;
  const std::int64_t need2 = 2 * x2;
  return std::max(need1, need2);
}

std::int64_t rr_join_min(int port, std::int64_t x) {
  if (x <= 0) return 0;
  return port == 0 ? (x + 1) / 2 : x / 2;
}

std::int64_t rr_join_max(std::int64_t x1, std::int64_t x2) {
  // Output n requires ceil(n/2) items on I1 and floor(n/2) on I2; the
  // largest feasible n is min(2*x1, 2*x2 + 1) (erratum fix: the paper's
  // min(2*x1 - 1, 2*x2) cannot emit the first item from I1 alone).
  return std::min(2 * x1, 2 * x2 + 1);
}

std::int64_t dup_split_max(std::int64_t x) { return x; }

std::int64_t dup_split_min(std::int64_t x1, std::int64_t x2) {
  return std::max(x1, x2);
}

std::int64_t combine_join_max(std::int64_t x1, std::int64_t x2) {
  return std::min(x1, x2);
}

std::int64_t combine_join_min(std::int64_t x) { return x; }

std::int64_t fb_join_min_loop(std::int64_t x, int n) {
  return std::max<std::int64_t>(0, rr_join_min(1, x) - n);
}

std::int64_t fb_join_max(std::int64_t x1, std::int64_t x2, int n) {
  return rr_join_max(x1, x2 + n);
}

std::int64_t wrr_split_max(const std::vector<int>& weights, int port,
                           std::int64_t x) {
  std::int64_t total = 0;
  for (int w : weights) total += w;
  if (total == 0 || x <= 0) return 0;
  const std::int64_t cycles = x / total;
  std::int64_t rem = x % total;
  std::int64_t out = cycles * weights[static_cast<std::size_t>(port)];
  for (int p = 0; p <= port && rem > 0; ++p) {
    const std::int64_t take =
        std::min<std::int64_t>(rem, weights[static_cast<std::size_t>(p)]);
    if (p == port) out += take;
    rem -= take;
  }
  return out;
}

std::int64_t wrr_join_max(const std::vector<int>& weights,
                          const std::vector<std::int64_t>& xs) {
  // Advance whole cycles while every input can cover its weight, then take
  // the partial prefix of the next cycle.
  std::int64_t cycles = -1;
  for (std::size_t p = 0; p < weights.size(); ++p) {
    if (weights[p] == 0) continue;
    const std::int64_t c = xs[p] / weights[p];
    cycles = cycles < 0 ? c : std::min(cycles, c);
  }
  if (cycles < 0) return 0;
  std::int64_t total = 0;
  for (int w : weights) total += w;
  std::int64_t out = cycles * total;
  // Partial cycle: inputs are drained in port order.
  for (std::size_t p = 0; p < weights.size(); ++p) {
    const std::int64_t left = xs[p] - cycles * weights[p];
    if (left >= weights[p]) {
      out += weights[p];
    } else {
      out += left;
      break;
    }
  }
  return out;
}

}  // namespace sit::sdep
