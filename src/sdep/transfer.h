#pragma once
// Closed-form tape-level transfer functions (the paper's "Information Flow"
// section): for each construct, max_{a->b}(x) = the most items that can
// appear on tape b given x items on tape a, and min_{a->b}(x) = the fewest
// items that must appear on a for x items to appear on b.  Filters'
// closed forms live in sdep.h; this header adds the splitter/joiner and
// feedback forms and the composition laws (paper eq. 2):
//
//     max_{x->z} = max_{y->z} o max_{x->y}
//     min_{x->z} = min_{x->y} o min_{y->z}
//
// Two errata in the paper's draft formulas are corrected here (each is
// verified against exhaustive routing simulation in the tests):
//  * round-robin splitter: min_{I->(O1,O2)}(x1,x2) must be the MAX of the
//    per-output requirements, max(2*x1 - 1, 2*x2), not their MIN -- both
//    outputs' demands must be met simultaneously;
//  * round-robin joiner: max_{(I1,I2)->O}(x1,x2) = min(2*x1, 2*x2 + 1):
//    with x1 = 1, x2 = 0 the joiner can already emit one item, which the
//    paper's expression min(2*x1 - 1, 2*x2) = 0 misses.

#include <cstdint>
#include <functional>
#include <vector>

namespace sit::sdep {

using TapeFn = std::function<std::int64_t(std::int64_t)>;

// Composition along a pipeline (paper eq. 2).
TapeFn compose_max(TapeFn upstream, TapeFn downstream);
TapeFn compose_min(TapeFn upstream, TapeFn downstream);

// Filter closed forms as composable functions.
TapeFn filter_max_fn(int peek, int pop, int push);
TapeFn filter_min_fn(int peek, int pop, int push);

// ---- two-way round-robin splitter (weights 1,1; first item to O1) ------------
std::int64_t rr_split_max(int port, std::int64_t x);              // port 0 or 1
std::int64_t rr_split_min(std::int64_t x1, std::int64_t x2);      // joint demand

// ---- two-way round-robin joiner (first item from I1) --------------------------
std::int64_t rr_join_min(int port, std::int64_t x);               // per input
std::int64_t rr_join_max(std::int64_t x1, std::int64_t x2);       // joint supply

// ---- duplicate splitter ---------------------------------------------------------
std::int64_t dup_split_max(std::int64_t x);                       // identity
std::int64_t dup_split_min(std::int64_t x1, std::int64_t x2);     // max demand

// ---- combine joiner (dual of duplicate) -------------------------------------------
std::int64_t combine_join_max(std::int64_t x1, std::int64_t x2);  // min supply
std::int64_t combine_join_min(std::int64_t x);                    // identity

// ---- feedback joiner --------------------------------------------------------------
// With n initial items fabricated on the loop input, the loop-side transfer
// functions shift by n (paper: min is offset by -n, max sees x2 + n).
std::int64_t fb_join_min_loop(std::int64_t x, int n);
std::int64_t fb_join_max(std::int64_t x1, std::int64_t x2, int n);

// ---- weighted generalizations (used by the analyses; the paper defers these) -------
// k-way weighted round-robin splitter: items on output port p after x input
// items have been routed.
std::int64_t wrr_split_max(const std::vector<int>& weights, int port,
                           std::int64_t x);
// k-way weighted round-robin joiner: output items producible from the given
// per-input counts.
std::int64_t wrr_join_max(const std::vector<int>& weights,
                          const std::vector<std::int64_t>& xs);

}  // namespace sit::sdep
