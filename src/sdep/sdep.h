#pragma once
// Information-wavefront analysis.
//
// The paper defines, for tapes a upstream of b, transfer functions
// max_{a->b}(x) (most items that can appear on b given x items on a) and
// min_{a->b}(x) (fewest items needed on a to put x items on b), and builds
// message-delivery semantics, deadlock detection and overflow detection on
// top of them.  Equivalently, in actor-firing space this is the StreamIt
// sdep relation: sdep_{u<-d}(n) = the minimum number of firings of upstream
// actor u required before downstream actor d can complete n firings.
//
// We compute sdep exactly by demand-driven ("pull") simulation of the flat
// graph -- each firing of d pulls the minimal transitive firings of its
// producers -- and store one steady-state period plus the initialization
// transient; values beyond the table follow from the periodicity
// sdep(n + k*reps_d) = sdep(n) + k*reps_u, which holds in any SDF graph.

#include <cstdint>
#include <vector>

#include "runtime/flatgraph.h"
#include "sched/schedule.h"

namespace sit::sdep {

class SdepAnalysis {
 public:
  explicit SdepAnalysis(const runtime::FlatGraph& g);

  // True iff there is a directed path (along data flow, back edges included)
  // from a to b.
  [[nodiscard]] bool is_upstream_of(int a, int b) const;

  // Minimum firings of `upstream` needed for `downstream` to complete `n`
  // firings (n >= 0).  Throws if there is no directed path.
  [[nodiscard]] std::int64_t sdep(int upstream, int downstream,
                                  std::int64_t n) const;

  // Inverse direction: the largest n such that sdep(upstream, downstream, n)
  // <= m -- i.e. how many firings of `downstream` are enabled by m firings
  // of `upstream`.  (This is the max transfer function in firing space.)
  [[nodiscard]] std::int64_t max_firings(int upstream, int downstream,
                                         std::int64_t m) const;

  [[nodiscard]] const sched::Schedule& schedule() const { return sched_; }

 private:
  const runtime::FlatGraph& g_;
  sched::Schedule sched_;
  std::vector<std::vector<bool>> reach_;
  // table_[d][n-1][u] = firings of u after the n-th pull of d, for
  // n = 1 .. 2 * reps[d].  Built lazily per downstream actor.
  mutable std::vector<std::vector<std::vector<std::int64_t>>> table_;
  void build_table(int d) const;
};

// ---- tape-level transfer functions (the paper's closed forms) -----------------

// For a single filter with the given rates:
//   max(x) = push * floor((x - (peek-pop)) / pop)  for x >= peek-pop, else 0
//   min(x) = ceil(x / push) * pop + (peek - pop)
std::int64_t filter_max_transfer(int peek, int pop, int push, std::int64_t x);
std::int64_t filter_min_transfer(int peek, int pop, int push, std::int64_t x);

// ---- program verification -----------------------------------------------------

struct LoopCheck {
  bool deadlock{false};
  bool overflow{false};
  std::string loop_name;
};

// Check every feedback loop: with delay d, the wavefront around the loop must
// return exactly x + d items (paper: maxloop(x) = x + delay; less means
// deadlock, more means unbounded buffer growth).  Checked numerically via
// the sdep relation around the back edge.
std::vector<LoopCheck> check_feedback_loops(const runtime::FlatGraph& g);

// Check every splitter/joiner pair: branch production must stay within O(1)
// of each other or an intermediate buffer grows without bound.  In a valid
// SDF schedule this holds by the balance equations; this reports any edge
// whose buffer bound exceeds `limit` as suspicious.
std::vector<std::string> check_buffer_bounds(const runtime::FlatGraph& g,
                                             std::int64_t limit);

}  // namespace sit::sdep
