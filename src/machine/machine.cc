#include "machine/machine.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace sit::machine {

std::vector<int> MachineConfig::route(int a, int b) const {
  // Dimension-ordered: X first, then Y.  Directions: 0=E (+x), 1=W, 2=N (+y
  // toward higher rows), 3=S.
  std::vector<int> links;
  int x = x_of(a), y = y_of(a);
  const int tx = x_of(b), ty = y_of(b);
  while (x != tx) {
    const int dir = tx > x ? 0 : 1;
    links.push_back((y * grid_w + x) * 4 + dir);
    x += tx > x ? 1 : -1;
  }
  while (y != ty) {
    const int dir = ty > y ? 2 : 3;
    links.push_back((y * grid_w + x) * 4 + dir);
    y += ty > y ? 1 : -1;
  }
  return links;
}

namespace {

struct Loads {
  std::vector<double> core;   // occupancy per core (compute + send + recv)
  std::vector<double> link;   // items per link
  double compute{0};
  double comm{0};
  double flops{0};
};

Loads accumulate(const MachineConfig& cfg, const std::vector<PlacedActor>& actors,
                 const std::vector<PlacedEdge>& edges) {
  Loads L;
  L.core.assign(static_cast<std::size_t>(cfg.cores()), 0.0);
  L.link.assign(static_cast<std::size_t>(cfg.num_links()), 0.0);
  for (const auto& a : actors) {
    if (a.core < 0 || a.core >= cfg.cores()) {
      throw std::invalid_argument("actor '" + a.name + "' placed off-chip");
    }
    L.core[static_cast<std::size_t>(a.core)] += a.compute_cycles;
    L.compute += a.compute_cycles;
    L.flops += a.flops;
  }
  for (const auto& e : edges) {
    if (e.src_actor < 0 || e.dst_actor < 0) continue;  // external I/O: free
    const int cs = actors[static_cast<std::size_t>(e.src_actor)].core;
    const int cd = actors[static_cast<std::size_t>(e.dst_actor)].core;
    if (cs == cd) continue;  // same-core channels live in local memory
    const double send = e.items * cfg.send_cost;
    const double recv = e.items * cfg.recv_cost;
    L.core[static_cast<std::size_t>(cs)] += send;
    L.core[static_cast<std::size_t>(cd)] += recv;
    L.comm += send + recv;
    for (int link : cfg.route(cs, cd)) {
      L.link[static_cast<std::size_t>(link)] += e.items;
    }
  }
  return L;
}

SimResult finish(const MachineConfig& cfg, const Loads& L, double cycles) {
  SimResult r;
  r.cycles_per_steady = cycles;
  r.compute_cycles = L.compute;
  r.comm_cycles = L.comm;
  r.utilization = cycles > 0
                      ? L.compute / (static_cast<double>(cfg.cores()) * cycles)
                      : 0.0;
  r.mflops = cycles > 0 ? L.flops * cfg.clock_mhz / cycles : 0.0;
  double worst_core = 0.0;
  for (std::size_t i = 0; i < L.core.size(); ++i) {
    if (L.core[i] > worst_core) {
      worst_core = L.core[i];
      r.bottleneck_core = static_cast<int>(i);
    }
  }
  for (double l : L.link) {
    r.bottleneck_link_cycles = std::max(r.bottleneck_link_cycles, l / cfg.link_bw);
  }
  return r;
}

double pipelined_cycles(const MachineConfig& cfg, const Loads& L) {
  double t = 0.0;
  for (double c : L.core) t = std::max(t, c);
  for (double l : L.link) t = std::max(t, l / cfg.link_bw);
  return t;
}

// List scheduling of one steady state respecting dependences: each actor is
// one task pinned to its core; a task may start once all its producers have
// finished and their data has crossed the network.
double dataflow_cycles(const MachineConfig& cfg,
                       const std::vector<PlacedActor>& actors,
                       const std::vector<PlacedEdge>& edges) {
  const std::size_t n = actors.size();
  std::vector<std::vector<std::size_t>> preds(n), succs(n);
  std::vector<int> indeg(n, 0);
  for (std::size_t ei = 0; ei < edges.size(); ++ei) {
    const auto& e = edges[ei];
    if (e.src_actor < 0 || e.dst_actor < 0 || e.back_edge) continue;
    preds[static_cast<std::size_t>(e.dst_actor)].push_back(ei);
    succs[static_cast<std::size_t>(e.src_actor)].push_back(ei);
    ++indeg[static_cast<std::size_t>(e.dst_actor)];
  }

  std::vector<double> core_free(static_cast<std::size_t>(cfg.cores()), 0.0);
  std::vector<double> finish_at(n, 0.0);
  std::vector<double> ready_at(n, 0.0);
  std::vector<bool> done(n, false);

  // Priority: critical-path-ish -- longest downstream compute first.
  std::vector<double> rank(n, 0.0);
  {
    // Reverse topological accumulation.
    std::vector<int> order;
    std::vector<int> deg = indeg;
    std::queue<std::size_t> q;
    for (std::size_t i = 0; i < n; ++i) {
      if (deg[i] == 0) q.push(i);
    }
    while (!q.empty()) {
      const std::size_t a = q.front();
      q.pop();
      order.push_back(static_cast<int>(a));
      for (std::size_t ei : succs[a]) {
        const auto d = static_cast<std::size_t>(edges[ei].dst_actor);
        if (--deg[d] == 0) q.push(d);
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const auto a = static_cast<std::size_t>(*it);
      double best = 0.0;
      for (std::size_t ei : succs[a]) {
        best = std::max(best, rank[static_cast<std::size_t>(edges[ei].dst_actor)]);
      }
      rank[a] = actors[a].compute_cycles + best;
    }
  }

  std::vector<int> remaining(n, 0);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = indeg[i];

  std::size_t scheduled = 0;
  while (scheduled < n) {
    // Pick the ready task with the highest rank.
    std::size_t pick = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i] || remaining[i] > 0) continue;
      if (pick == n || rank[i] > rank[pick]) pick = i;
    }
    if (pick == n) throw std::runtime_error("dependence cycle in dataflow sim");

    const auto core = static_cast<std::size_t>(actors[pick].core);
    // Data arrival: producers' finish + network latency + transfer occupancy.
    double arrive = ready_at[pick];
    for (std::size_t ei : preds[pick]) {
      const auto& e = edges[ei];
      const auto src = static_cast<std::size_t>(e.src_actor);
      const int cs = actors[src].core;
      const int cd = actors[pick].core;
      double t = finish_at[src];
      if (cs != cd) {
        t += static_cast<double>(cfg.hops(cs, cd)) * cfg.hop_latency +
             e.items * (cfg.send_cost + cfg.recv_cost);
      }
      arrive = std::max(arrive, t);
    }
    const double start = std::max(arrive, core_free[core]);
    const double fin = start + actors[pick].compute_cycles;
    finish_at[pick] = fin;
    core_free[core] = fin;
    done[pick] = true;
    ++scheduled;
    for (std::size_t ei : succs[pick]) {
      --remaining[static_cast<std::size_t>(edges[ei].dst_actor)];
    }
  }

  double makespan = 0.0;
  for (double f : finish_at) makespan = std::max(makespan, f);
  return makespan;
}

}  // namespace

SimResult simulate(const MachineConfig& cfg, const std::vector<PlacedActor>& actors,
                   const std::vector<PlacedEdge>& edges, ExecMode mode) {
  const Loads L = accumulate(cfg, actors, edges);
  double cycles = 0.0;
  if (mode == ExecMode::Pipelined) {
    cycles = pipelined_cycles(cfg, L);
  } else {
    cycles = std::max(dataflow_cycles(cfg, actors, edges), pipelined_cycles(cfg, L));
  }
  return finish(cfg, L, cycles);
}

std::string SimResult::describe() const {
  std::ostringstream os;
  os << "cycles/steady=" << cycles_per_steady << " util=" << utilization
     << " mflops=" << mflops << " (bottleneck core " << bottleneck_core << ")";
  return os.str();
}

}  // namespace sit::machine
