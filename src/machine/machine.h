#pragma once
// The modeled machine: a Raw-like grid of single-issue, in-order cores with
// a nearest-neighbor mesh network (the paper's 16-core, 4x4 target).
//
// This repository substitutes a deterministic performance model for the
// actual Raw hardware (see DESIGN.md): compute cost comes from the
// interpreter's cycle-weighted operation counts, communication cost from a
// per-item occupancy on the sending and receiving cores plus per-link
// bandwidth along dimension-ordered (XY) routes.  Absolute cycle counts are
// not the point -- relative throughput between mapping strategies is.

#include <cstdint>
#include <string>
#include <vector>

namespace sit::machine {

struct MachineConfig {
  int grid_w{4};
  int grid_h{4};
  double clock_mhz{450.0};      // peak 16 cores * 450 MHz * 1 flop = 7200 MFLOPS
  double flops_per_cycle{1.0};  // single-issue core
  double send_cost{1.0};        // cycles of core occupancy per item sent
  double recv_cost{1.0};        // cycles of core occupancy per item received
  double hop_latency{3.0};      // cycles of latency per mesh hop
  double link_bw{1.0};          // items per cycle per mesh link

  [[nodiscard]] int cores() const { return grid_w * grid_h; }
  [[nodiscard]] int x_of(int core) const { return core % grid_w; }
  [[nodiscard]] int y_of(int core) const { return core / grid_w; }
  [[nodiscard]] int hops(int a, int b) const {
    return std::abs(x_of(a) - x_of(b)) + std::abs(y_of(a) - y_of(b));
  }

  // Directed mesh links along the XY route from core a to core b.
  // Links are identified by (core, direction) with direction 0..3 = E,W,N,S.
  [[nodiscard]] std::vector<int> route(int a, int b) const;
  [[nodiscard]] int num_links() const { return cores() * 4; }
};

// One actor's placement and per-steady-state resource demands, produced by
// the mapping strategies in sit::parallel.
struct PlacedActor {
  std::string name;
  int core{0};
  double compute_cycles{0};  // work per steady state (all firings)
  double flops{0};           // floating-point ops per steady state
};

// One edge's per-steady-state traffic.
struct PlacedEdge {
  int src_actor{-1};  // index into the placed-actor vector; -1 = external
  int dst_actor{-1};
  double items{0};
  bool back_edge{false};
};

struct SimResult {
  double cycles_per_steady{0};
  double compute_cycles{0};     // sum of all actor compute
  double comm_cycles{0};        // total send+recv occupancy
  double utilization{0};        // compute / (cores * cycles)
  double mflops{0};
  int bottleneck_core{-1};
  double bottleneck_link_cycles{0};
  std::string describe() const;
};

enum class ExecMode {
  // Coarse-grained software pipelining / space multiplexing: successive
  // steady states overlap, so throughput is limited by the most loaded
  // resource (core occupancy or mesh link), not by dependences.
  Pipelined,
  // Fork/join execution: one steady state at a time; actors respect data
  // dependences; makespan via list scheduling on the placed cores.
  DataFlow,
};

// Simulate one steady state of a placed graph.
SimResult simulate(const MachineConfig& cfg, const std::vector<PlacedActor>& actors,
                   const std::vector<PlacedEdge>& edges, ExecMode mode);

}  // namespace sit::machine
